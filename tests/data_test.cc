#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/example.h"
#include "data/generator.h"
#include "text/string_metrics.h"
#include "text/tokenizer.h"

namespace metablink::data {
namespace {

GeneratorOptions SmallOptions() {
  GeneratorOptions opts;
  opts.seed = 42;
  opts.shared_vocab_size = 300;
  opts.domain_vocab_size = 150;
  return opts;
}

std::vector<DomainSpec> SmallSpecs() {
  std::vector<DomainSpec> specs(2);
  specs[0].name = "alpha";
  specs[0].num_entities = 80;
  specs[0].num_examples = 200;
  specs[0].num_documents = 50;
  specs[1].name = "beta";
  specs[1].num_entities = 60;
  specs[1].num_examples = 100;
  specs[1].num_documents = 30;
  specs[1].gap = 0.6;
  return specs;
}

TEST(GeneratorTest, ProducesRequestedCounts) {
  ZeshelLikeGenerator gen(SmallOptions());
  auto corpus = gen.Generate(SmallSpecs());
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->kb.EntitiesInDomain("alpha").size(), 80u);
  EXPECT_EQ(corpus->kb.EntitiesInDomain("beta").size(), 60u);
  EXPECT_EQ(corpus->ExamplesIn("alpha").size(), 200u);
  EXPECT_EQ(corpus->DocumentsIn("alpha").size(), 50u);
  EXPECT_TRUE(corpus->ExamplesIn("absent").empty());
  EXPECT_TRUE(corpus->DocumentsIn("absent").empty());
}

TEST(GeneratorTest, DeterministicForSeed) {
  ZeshelLikeGenerator g1(SmallOptions()), g2(SmallOptions());
  auto c1 = g1.Generate(SmallSpecs());
  auto c2 = g2.Generate(SmallSpecs());
  ASSERT_TRUE(c1.ok() && c2.ok());
  ASSERT_EQ(c1->kb.num_entities(), c2->kb.num_entities());
  for (std::size_t i = 0; i < c1->kb.num_entities(); ++i) {
    EXPECT_EQ(c1->kb.entity(i).title, c2->kb.entity(i).title);
    EXPECT_EQ(c1->kb.entity(i).description, c2->kb.entity(i).description);
  }
  const auto& e1 = c1->ExamplesIn("alpha");
  const auto& e2 = c2->ExamplesIn("alpha");
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].mention, e2[i].mention);
    EXPECT_EQ(e1[i].entity_id, e2[i].entity_id);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto opts2 = SmallOptions();
  opts2.seed = 43;
  ZeshelLikeGenerator g1(SmallOptions()), g2(opts2);
  auto c1 = g1.Generate(SmallSpecs());
  auto c2 = g2.Generate(SmallSpecs());
  EXPECT_NE(c1->kb.entity(0).title, c2->kb.entity(0).title);
}

TEST(GeneratorTest, RejectsDuplicateDomains) {
  ZeshelLikeGenerator gen(SmallOptions());
  auto specs = SmallSpecs();
  specs[1].name = "alpha";
  EXPECT_FALSE(gen.Generate(specs).ok());
}

TEST(GeneratorTest, RejectsEmptyDomainName) {
  ZeshelLikeGenerator gen(SmallOptions());
  auto specs = SmallSpecs();
  specs[0].name = "";
  EXPECT_FALSE(gen.Generate(specs).ok());
}

TEST(GeneratorTest, ExamplesLinkToOwnDomain) {
  ZeshelLikeGenerator gen(SmallOptions());
  auto corpus = gen.Generate(SmallSpecs());
  for (const auto& ex : corpus->ExamplesIn("alpha")) {
    ASSERT_LT(ex.entity_id, corpus->kb.num_entities());
    EXPECT_EQ(corpus->kb.entity(ex.entity_id).domain, "alpha");
    EXPECT_EQ(ex.domain, "alpha");
    EXPECT_EQ(ex.source, ExampleSource::kGold);
    EXPECT_FALSE(ex.mention.empty());
  }
}

TEST(GeneratorTest, CategoryMixRoughlyMatchesSpec) {
  auto opts = SmallOptions();
  ZeshelLikeGenerator gen(opts);
  auto specs = SmallSpecs();
  specs[0].num_examples = 2000;
  specs[0].p_high_overlap = 0.2;
  specs[0].p_multiple_categories = 0.2;
  specs[0].p_ambiguous_substring = 0.1;
  auto corpus = gen.Generate(specs);
  auto hist = CategoryHistogram(corpus->ExamplesIn("alpha"), corpus->kb);
  const double n = 2000.0;
  EXPECT_NEAR(hist[text::OverlapCategory::kHighOverlap] / n, 0.2, 0.05);
  EXPECT_NEAR(hist[text::OverlapCategory::kMultipleCategories] / n, 0.2,
              0.05);
  // Low overlap dominates the remainder.
  EXPECT_GT(hist[text::OverlapCategory::kLowOverlap] / n, 0.35);
}

TEST(GeneratorTest, DescriptionsStartWithBaseTitle) {
  // Required by the self-match seed heuristic.
  ZeshelLikeGenerator gen(SmallOptions());
  auto corpus = gen.Generate(SmallSpecs());
  for (kb::EntityId id : corpus->kb.EntitiesInDomain("alpha")) {
    const auto& e = corpus->kb.entity(id);
    std::string phrase;
    const std::string base = text::StripDisambiguation(e.title, &phrase);
    EXPECT_EQ(e.description.rfind(base, 0), 0u)
        << "description must start with '" << base << "'";
  }
}

TEST(GeneratorTest, DisambiguatedSiblingsShareBaseTitle) {
  ZeshelLikeGenerator gen(SmallOptions());
  auto corpus = gen.Generate(SmallSpecs());
  std::size_t disambiguated = 0;
  std::map<std::string, int> base_counts;
  for (kb::EntityId id : corpus->kb.EntitiesInDomain("alpha")) {
    std::string phrase;
    const std::string base =
        text::StripDisambiguation(corpus->kb.entity(id).title, &phrase);
    if (!phrase.empty()) {
      ++disambiguated;
      base_counts[base]++;
    }
  }
  EXPECT_GT(disambiguated, 0u);
  for (const auto& [base, count] : base_counts) {
    EXPECT_GE(count, 2) << base << " should have siblings";
  }
}

TEST(GeneratorTest, DocumentsNonEmpty) {
  ZeshelLikeGenerator gen(SmallOptions());
  auto corpus = gen.Generate(SmallSpecs());
  for (const auto& doc : corpus->DocumentsIn("alpha")) {
    EXPECT_GT(doc.size(), 20u);
  }
}

TEST(GeneratorTest, TriplesStayInDomainEntities) {
  ZeshelLikeGenerator gen(SmallOptions());
  auto corpus = gen.Generate(SmallSpecs());
  EXPECT_FALSE(corpus->kb.triples().empty());
  for (const auto& t : corpus->kb.triples()) {
    EXPECT_LT(t.head, corpus->kb.num_entities());
    EXPECT_LT(t.tail, corpus->kb.num_entities());
    EXPECT_EQ(corpus->kb.entity(t.head).domain,
              corpus->kb.entity(t.tail).domain);
  }
}

TEST(GeneratorTest, PaperDomainsCoverSplit) {
  auto specs = ZeshelLikeGenerator::PaperDomains(1.0);
  EXPECT_EQ(specs.size(), 16u);
  std::set<std::string> names;
  for (const auto& s : specs) names.insert(s.name);
  for (const auto& n : ZeshelLikeGenerator::TrainDomainNames()) {
    EXPECT_TRUE(names.count(n)) << n;
  }
  for (const auto& n : ZeshelLikeGenerator::TestDomainNames()) {
    EXPECT_TRUE(names.count(n)) << n;
  }
  for (const auto& n : ZeshelLikeGenerator::DevDomainNames()) {
    EXPECT_TRUE(names.count(n)) << n;
  }
}

TEST(GeneratorTest, PaperDomainsScale) {
  auto half = ZeshelLikeGenerator::PaperDomains(0.5);
  auto full = ZeshelLikeGenerator::PaperDomains(1.0);
  for (std::size_t i = 0; i < half.size(); ++i) {
    EXPECT_LE(half[i].num_entities, full[i].num_entities);
  }
  // YuGiOh keeps the largest gap, Forgotten Realms the smallest (Table VIII
  // structure).
  double yugioh_gap = 0, fr_gap = 1;
  for (const auto& s : full) {
    if (s.name == "yugioh") yugioh_gap = s.gap;
    if (s.name == "forgotten_realms") fr_gap = s.gap;
  }
  EXPECT_GT(yugioh_gap, fr_gap);
}

TEST(SplitTest, FewShotSplitSizes) {
  std::vector<LinkingExample> examples(200);
  for (std::size_t i = 0; i < examples.size(); ++i) {
    examples[i].mention = "m" + std::to_string(i);
  }
  auto split = MakeFewShotSplit(examples, 50, 50, 1);
  EXPECT_EQ(split.train.size(), 50u);
  EXPECT_EQ(split.dev.size(), 50u);
  EXPECT_EQ(split.test.size(), 100u);
  // Deterministic and partitioning.
  auto split2 = MakeFewShotSplit(examples, 50, 50, 1);
  EXPECT_EQ(split.train[0].mention, split2.train[0].mention);
  std::set<std::string> all;
  for (const auto& e : split.train) all.insert(e.mention);
  for (const auto& e : split.dev) all.insert(e.mention);
  for (const auto& e : split.test) all.insert(e.mention);
  EXPECT_EQ(all.size(), 200u);
}

TEST(SplitTest, SmallInputDegradesGracefully) {
  std::vector<LinkingExample> examples(30);
  auto split = MakeFewShotSplit(examples, 50, 50, 1);
  EXPECT_EQ(split.train.size(), 30u);
  EXPECT_TRUE(split.dev.empty());
  EXPECT_TRUE(split.test.empty());
}

TEST(ExampleTest, FullTextAssembly) {
  LinkingExample ex;
  ex.mention = "m";
  ex.left_context = "left";
  ex.right_context = "right";
  EXPECT_EQ(ex.FullText(), "left m right");
  ex.left_context.clear();
  EXPECT_EQ(ex.FullText(), "m right");
  ex.right_context.clear();
  EXPECT_EQ(ex.FullText(), "m");
}

}  // namespace
}  // namespace metablink::data
