#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "data/generator.h"
#include "kb/knowledge_base.h"
#include "model/bi_encoder.h"
#include "model/cross_encoder.h"
#include "retrieval/dense_index.h"
#include "store/checkpoint.h"
#include "store/model_bundle.h"
#include "train/bi_trainer.h"
#include "train/cross_trainer.h"
#include "train/meta_trainer.h"
#include "train/trainer_checkpoint.h"
#include "util/serialize.h"

namespace metablink::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "metablink_store_" + name;
}

std::vector<std::uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

bool FileExists(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// ---- Container framing -----------------------------------------------------

std::vector<std::uint8_t> TwoSectionContainer() {
  CheckpointWriter ckpt;
  util::BinaryWriter* a = ckpt.AddSection("alpha");
  a->WriteU64(42);
  a->WriteString("hello");
  util::BinaryWriter* b = ckpt.AddSection("beta");
  b->WriteFloatVector({1.0f, 2.5f, -3.0f});
  return ckpt.Serialize();
}

TEST(CheckpointContainerTest, RoundTrip) {
  auto reader = CheckpointReader::Parse(TwoSectionContainer());
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  EXPECT_EQ(reader->version(), kCheckpointVersion);
  EXPECT_TRUE(reader->Has("alpha"));
  EXPECT_TRUE(reader->Has("beta"));
  EXPECT_FALSE(reader->Has("gamma"));
  auto alpha = reader->Section("alpha");
  ASSERT_TRUE(alpha.ok());
  std::uint64_t v = 0;
  std::string s;
  ASSERT_TRUE(alpha->ReadU64(&v).ok());
  ASSERT_TRUE(alpha->ReadString(&s).ok());
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(s, "hello");
  auto beta = reader->Section("beta");
  ASSERT_TRUE(beta.ok());
  std::vector<float> floats;
  ASSERT_TRUE(beta->ReadFloatVector(&floats).ok());
  EXPECT_EQ(floats, (std::vector<float>{1.0f, 2.5f, -3.0f}));
  EXPECT_EQ(reader->Section("gamma").status().code(),
            util::StatusCode::kNotFound);
}

TEST(CheckpointContainerTest, EveryPrefixTruncationIsCleanlyRejected) {
  const std::vector<std::uint8_t> full = TwoSectionContainer();
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::uint8_t> cut(full.begin(), full.begin() + len);
    auto reader = CheckpointReader::Parse(std::move(cut));
    ASSERT_FALSE(reader.ok()) << "prefix of length " << len << " parsed";
    const util::StatusCode code = reader.status().code();
    EXPECT_TRUE(code == util::StatusCode::kOutOfRange ||
                code == util::StatusCode::kInvalidArgument)
        << "prefix " << len << ": " << reader.status().message();
  }
}

TEST(CheckpointContainerTest, EverySingleBitFlipIsDetected) {
  const std::vector<std::uint8_t> full = TwoSectionContainer();
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (std::uint8_t bit : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      std::vector<std::uint8_t> flipped = full;
      flipped[byte] ^= bit;
      auto reader = CheckpointReader::Parse(std::move(flipped));
      EXPECT_FALSE(reader.ok())
          << "bit flip at byte " << byte << " went undetected";
    }
  }
}

TEST(CheckpointContainerTest, TrailingGarbageIsDataLoss) {
  std::vector<std::uint8_t> bytes = TwoSectionContainer();
  bytes.push_back(0x00);
  auto reader = CheckpointReader::Parse(std::move(bytes));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), util::StatusCode::kDataLoss);
}

TEST(CheckpointContainerTest, FutureVersionIsRejected) {
  std::vector<std::uint8_t> bytes = TwoSectionContainer();
  // Bytes 4..7 are the little-endian format version.
  bytes[4] = static_cast<std::uint8_t>(kCheckpointVersion + 1);
  auto reader = CheckpointReader::Parse(std::move(bytes));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(CheckpointContainerTest, AtomicWriteReplacesAndFailsCleanly) {
  const std::string path = TempPath("atomic.ckpt");
  CheckpointWriter first;
  first.AddSection("s")->WriteU64(1);
  ASSERT_TRUE(first.WriteToFile(path).ok());
  CheckpointWriter second;
  second.AddSection("s")->WriteU64(2);
  ASSERT_TRUE(second.WriteToFile(path).ok());
  auto reader = CheckpointReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  std::uint64_t v = 0;
  ASSERT_TRUE(reader->Section("s")->ReadU64(&v).ok());
  EXPECT_EQ(v, 2u);
  std::remove(path.c_str());

  // A write into a directory that does not exist fails with a Status and
  // leaves nothing behind (no destination file, no stray temp file).
  const std::string bad = TempPath("no_such_dir") + "/x.ckpt";
  EXPECT_FALSE(second.WriteToFile(bad).ok());
  EXPECT_FALSE(FileExists(bad));
  EXPECT_FALSE(FileExists(bad + ".tmp"));
}

// ---- Shared fixture: a small corpus + freshly initialized models -----------

model::BiEncoderConfig SmallBiConfig() {
  model::BiEncoderConfig config;
  config.features.hasher.num_buckets = 2048;
  config.dim = 16;
  return config;
}

model::CrossEncoderConfig SmallCrossConfig() {
  model::CrossEncoderConfig config;
  config.features.hasher.num_buckets = 2048;
  config.dim = 16;
  config.hidden = 16;
  return config;
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorOptions opts;
    opts.seed = 91;
    opts.shared_vocab_size = 300;
    opts.domain_vocab_size = 150;
    data::ZeshelLikeGenerator gen(opts);
    std::vector<data::DomainSpec> specs(1);
    specs[0].name = "target";
    specs[0].num_entities = 60;
    specs[0].num_examples = 120;
    corpus_ = std::make_unique<data::Corpus>(std::move(*gen.Generate(specs)));
    examples_ = corpus_->ExamplesIn("target");
  }

  std::unique_ptr<model::BiEncoder> MakeBi(std::uint64_t seed = 5) const {
    util::Rng rng(seed);
    return std::make_unique<model::BiEncoder>(SmallBiConfig(), &rng);
  }

  std::unique_ptr<model::CrossEncoder> MakeCross(std::uint64_t seed = 6) const {
    util::Rng rng(seed);
    return std::make_unique<model::CrossEncoder>(SmallCrossConfig(), &rng);
  }

  /// Cross instances without a retrieval stage: each example gets a fixed
  /// 4-candidate window over the domain with the gold patched in.
  std::vector<train::CrossInstance> MakeCrossInstances() const {
    const auto& ids = corpus_->kb.EntitiesInDomain("target");
    std::vector<train::CrossInstance> out;
    for (std::size_t i = 0; i < 40; ++i) {
      train::CrossInstance inst;
      inst.example = examples_[i];
      for (std::size_t c = 0; c < 4; ++c) {
        inst.candidates.push_back(ids[(i + c) % ids.size()]);
      }
      inst.candidates[0] = inst.example.entity_id;
      inst.gold_index = 0;
      out.push_back(std::move(inst));
    }
    return out;
  }

  std::unique_ptr<data::Corpus> corpus_;
  std::vector<data::LinkingExample> examples_;
};

// ---- Trainer resume --------------------------------------------------------

TEST_F(StoreTest, BiTrainerResumeIsBitIdentical) {
  train::TrainOptions straight;
  straight.epochs = 3;
  straight.batch_size = 16;
  straight.seed = 21;
  auto reference = MakeBi();
  ASSERT_TRUE(train::BiEncoderTrainer(straight)
                  .Train(reference.get(), corpus_->kb, examples_)
                  .ok());

  // "Kill" after one epoch, then a brand-new trainer resumes from the file.
  const std::string path = TempPath("bi_resume.ckpt");
  std::remove(path.c_str());
  auto resumed = MakeBi();
  train::TrainOptions first = straight;
  first.epochs = 1;
  first.checkpoint_path = path;
  ASSERT_TRUE(train::BiEncoderTrainer(first)
                  .Train(resumed.get(), corpus_->kb, examples_)
                  .ok());
  train::TrainOptions rest = straight;
  rest.checkpoint_path = path;
  auto result = train::BiEncoderTrainer(rest).Train(resumed.get(),
                                                    corpus_->kb, examples_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->epoch_losses.size(), 3u);
  EXPECT_EQ(reference->params()->ValuesCrc32(),
            resumed->params()->ValuesCrc32());
  std::remove(path.c_str());
}

TEST_F(StoreTest, CrossTrainerResumeIsBitIdentical) {
  const std::vector<train::CrossInstance> instances = MakeCrossInstances();
  train::TrainOptions straight;
  straight.epochs = 3;
  straight.seed = 22;
  auto reference = MakeCross();
  ASSERT_TRUE(train::CrossEncoderTrainer(straight)
                  .Train(reference.get(), corpus_->kb, instances)
                  .ok());

  const std::string path = TempPath("cross_resume.ckpt");
  std::remove(path.c_str());
  auto resumed = MakeCross();
  train::TrainOptions first = straight;
  first.epochs = 2;
  first.checkpoint_path = path;
  ASSERT_TRUE(train::CrossEncoderTrainer(first)
                  .Train(resumed.get(), corpus_->kb, instances)
                  .ok());
  train::TrainOptions rest = straight;
  rest.checkpoint_path = path;
  ASSERT_TRUE(train::CrossEncoderTrainer(rest)
                  .Train(resumed.get(), corpus_->kb, instances)
                  .ok());
  EXPECT_EQ(reference->params()->ValuesCrc32(),
            resumed->params()->ValuesCrc32());
  std::remove(path.c_str());
}

TEST_F(StoreTest, MetaTrainerKillAndResumeIsBitIdentical) {
  // The acceptance scenario: a meta-reweight run killed mid-flight resumes
  // from its checkpoint and finishes with exactly the parameters (and Adam
  // moments, via the continued trajectory) of an uninterrupted run.
  const std::vector<data::LinkingExample> synthetic(examples_.begin(),
                                                    examples_.begin() + 80);
  const std::vector<data::LinkingExample> seed_set(examples_.begin() + 80,
                                                   examples_.begin() + 100);
  train::MetaTrainOptions opts;
  opts.steps = 30;
  opts.batch_size = 8;
  opts.meta_batch_size = 4;
  opts.seed = 23;

  auto reference = MakeBi();
  train::MetaReweightTrainer ref_trainer(
      opts, reference->params(),
      [&](tensor::Graph* g, const std::vector<data::LinkingExample>& batch) {
        return reference->InBatchLoss(g, batch, corpus_->kb);
      });
  auto ref_result = ref_trainer.Train(synthetic, seed_set);
  ASSERT_TRUE(ref_result.ok());

  const std::string path = TempPath("meta_resume.ckpt");
  std::remove(path.c_str());
  auto resumed = MakeBi();
  train::MetaTrainOptions killed = opts;
  killed.steps = 20;  // the "kill": stop before the full run
  killed.checkpoint_path = path;
  killed.checkpoint_every = 10;
  {
    train::MetaReweightTrainer trainer(
        killed, resumed->params(),
        [&](tensor::Graph* g, const std::vector<data::LinkingExample>& batch) {
          return resumed->InBatchLoss(g, batch, corpus_->kb);
        });
    ASSERT_TRUE(trainer.Train(synthetic, seed_set).ok());
  }  // trainer destroyed: nothing survives but the checkpoint file

  train::MetaTrainOptions full = opts;
  full.checkpoint_path = path;
  full.checkpoint_every = 10;
  train::MetaReweightTrainer restarted(
      full, resumed->params(),
      [&](tensor::Graph* g, const std::vector<data::LinkingExample>& batch) {
        return resumed->InBatchLoss(g, batch, corpus_->kb);
      });
  auto result = restarted.Train(synthetic, seed_set);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps, opts.steps);
  EXPECT_EQ(result->final_synthetic_loss, ref_result->final_synthetic_loss);
  EXPECT_EQ(result->final_seed_loss, ref_result->final_seed_loss);
  EXPECT_EQ(reference->params()->ValuesCrc32(),
            resumed->params()->ValuesCrc32());
  std::remove(path.c_str());
}

TEST_F(StoreTest, CorruptTrainerCheckpointFailsTheRunInsteadOfRestarting) {
  const std::string path = TempPath("corrupt_trainer.ckpt");
  WriteAll(path, {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02});
  auto model = MakeBi();
  train::TrainOptions opts;
  opts.epochs = 1;
  opts.checkpoint_path = path;
  auto result =
      train::BiEncoderTrainer(opts).Train(model.get(), corpus_->kb, examples_);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST_F(StoreTest, TrainerTagMismatchIsRejected) {
  const std::string path = TempPath("tag_mismatch.ckpt");
  auto model = MakeBi();
  util::Rng rng(1);
  tensor::AdamOptimizer optimizer(0.01f);
  train::EpochCheckpointState state;
  state.next_epoch = 1;
  state.order = {0, 1, 2};
  ASSERT_TRUE(train::SaveEpochCheckpoint(0x1111u, state, *model->params(),
                                         optimizer, rng, path)
                  .ok());
  auto loaded = train::LoadEpochCheckpoint(0x2222u, path, model->params(),
                                           &optimizer, &rng);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  auto same = train::LoadEpochCheckpoint(0x1111u, path, model->params(),
                                         &optimizer, &rng);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->next_epoch, 1u);
  EXPECT_EQ(same->order, (std::vector<std::uint64_t>{0, 1, 2}));
  std::remove(path.c_str());
}

// ---- Encoder checkpoint files ----------------------------------------------

TEST_F(StoreTest, EncoderFilesRoundTripAndRejectConfigMismatch) {
  const std::string path = TempPath("bi.ckpt");
  auto original = MakeBi(/*seed=*/7);
  ASSERT_TRUE(original->SaveToFile(path).ok());
  auto other = MakeBi(/*seed=*/8);  // different init, same config
  ASSERT_NE(original->params()->ValuesCrc32(), other->params()->ValuesCrc32());
  ASSERT_TRUE(other->LoadFromFile(path).ok());
  EXPECT_EQ(original->params()->ValuesCrc32(), other->params()->ValuesCrc32());

  model::BiEncoderConfig different = SmallBiConfig();
  different.dim = 24;
  util::Rng rng(9);
  model::BiEncoder mismatched(different, &rng);
  auto status = mismatched.LoadFromFile(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// ---- Legacy headerless formats stay readable -------------------------------

TEST_F(StoreTest, LegacyEncoderByteLayoutStillLoads) {
  // Pin the pre-store-subsystem format: a bare u32 tag followed by the raw
  // parameter stream, no container framing. Files written by old builds
  // must keep loading.
  const std::string bi_path = TempPath("legacy_bi.bin");
  auto bi = MakeBi(/*seed=*/31);
  {
    util::BinaryWriter w;
    w.WriteU32(0x4249u);  // "BI"
    bi->params()->Save(&w);
    ASSERT_TRUE(w.WriteToFile(bi_path).ok());
  }
  auto bi2 = MakeBi(/*seed=*/32);
  ASSERT_TRUE(bi2->LoadFromFile(bi_path).ok());
  EXPECT_EQ(bi->params()->ValuesCrc32(), bi2->params()->ValuesCrc32());
  std::remove(bi_path.c_str());

  const std::string cross_path = TempPath("legacy_cross.bin");
  auto cross = MakeCross(/*seed=*/33);
  {
    util::BinaryWriter w;
    w.WriteU32(0x4352u);  // "CR"
    cross->params()->Save(&w);
    ASSERT_TRUE(w.WriteToFile(cross_path).ok());
  }
  auto cross2 = MakeCross(/*seed=*/34);
  ASSERT_TRUE(cross2->LoadFromFile(cross_path).ok());
  EXPECT_EQ(cross->params()->ValuesCrc32(), cross2->params()->ValuesCrc32());
  std::remove(cross_path.c_str());

  // A wrong tag is a clean error, not a misparse.
  const std::string wrong = TempPath("legacy_wrong.bin");
  {
    util::BinaryWriter w;
    w.WriteU32(0x4352u);  // cross tag fed to the bi-encoder loader
    bi->params()->Save(&w);
    ASSERT_TRUE(w.WriteToFile(wrong).ok());
  }
  EXPECT_FALSE(bi2->LoadFromFile(wrong).ok());
  std::remove(wrong.c_str());
}

TEST_F(StoreTest, LegacyIndexAndKbByteLayoutsStillLoad) {
  const auto& ids = corpus_->kb.EntitiesInDomain("target");
  auto bi = MakeBi();
  retrieval::DenseIndex index;
  ASSERT_TRUE(
      index.Build(bi->EmbedEntityIds(ids, corpus_->kb), ids).ok());

  const std::string index_path = TempPath("legacy_index.bin");
  {
    util::BinaryWriter w;
    index.Save(&w);  // raw legacy stream, no container
    ASSERT_TRUE(w.WriteToFile(index_path).ok());
  }
  retrieval::DenseIndex loaded_index;
  ASSERT_TRUE(loaded_index.LoadFromFile(index_path).ok());
  ASSERT_EQ(loaded_index.size(), index.size());
  EXPECT_EQ(loaded_index.ids(), index.ids());
  for (std::size_t j = 0; j < index.dim(); ++j) {
    EXPECT_EQ(loaded_index.EmbeddingAt(0)[j], index.EmbeddingAt(0)[j]);
  }
  std::remove(index_path.c_str());

  const std::string kb_path = TempPath("legacy_kb.bin");
  {
    util::BinaryWriter w;
    corpus_->kb.Save(&w);  // raw legacy stream
    ASSERT_TRUE(w.WriteToFile(kb_path).ok());
  }
  auto loaded_kb = kb::KnowledgeBase::LoadFromFile(kb_path);
  ASSERT_TRUE(loaded_kb.ok());
  EXPECT_EQ(loaded_kb->num_entities(), corpus_->kb.num_entities());
  EXPECT_EQ(loaded_kb->EntitiesInDomain("target").size(), ids.size());
  std::remove(kb_path.c_str());

  // And the framed forms round-trip through the same entry points.
  const std::string framed = TempPath("framed_index.ckpt");
  ASSERT_TRUE(index.SaveToFile(framed).ok());
  retrieval::DenseIndex framed_index;
  ASSERT_TRUE(framed_index.LoadFromFile(framed).ok());
  EXPECT_EQ(framed_index.ids(), index.ids());
  std::remove(framed.c_str());
}

// ---- Artifact bundles ------------------------------------------------------

class BundleTest : public StoreTest {
 protected:
  void SetUp() override {
    StoreTest::SetUp();
    bi_ = MakeBi(/*seed=*/41);
    cross_ = MakeCross(/*seed=*/42);
    const auto& ids = corpus_->kb.EntitiesInDomain("target");
    ASSERT_TRUE(
        index_.Build(bi_->EmbedEntityIds(ids, corpus_->kb), ids).ok());
    std::vector<kb::Entity> entities;
    for (kb::EntityId id : ids) entities.push_back(corpus_->kb.entity(id));
    cross_->PrecomputeEntities(entities, &cache_);
  }

  util::Status Save(const std::string& dir, std::uint64_t version = 3,
                    bool with_cache = true) {
    ModelBundleParts parts;
    parts.model_version = version;
    parts.domain = "target";
    parts.bi = bi_.get();
    parts.cross = cross_.get();
    parts.kb = &corpus_->kb;
    parts.index = &index_;
    parts.rerank_cache = with_cache ? &cache_ : nullptr;
    return SaveModelBundle(parts, dir);
  }

  std::unique_ptr<model::BiEncoder> bi_;
  std::unique_ptr<model::CrossEncoder> cross_;
  retrieval::DenseIndex index_;
  model::CrossEntityCache cache_;
};

TEST_F(BundleTest, SaveLoadRoundTrip) {
  const std::string dir = TempPath("bundle_roundtrip");
  ASSERT_TRUE(Save(dir).ok());
  auto bundle = LoadModelBundle(dir);
  ASSERT_TRUE(bundle.ok()) << bundle.status().message();
  EXPECT_EQ(bundle->model_version, 3u);
  EXPECT_EQ(bundle->domain, "target");
  EXPECT_EQ(bundle->bi->params()->ValuesCrc32(),
            bi_->params()->ValuesCrc32());
  EXPECT_EQ(bundle->cross->params()->ValuesCrc32(),
            cross_->params()->ValuesCrc32());
  EXPECT_EQ(bundle->kb->num_entities(), corpus_->kb.num_entities());
  EXPECT_EQ(bundle->index.ids(), index_.ids());
  EXPECT_TRUE(bundle->has_rerank_cache);
  ASSERT_EQ(bundle->rerank_cache.tokens.size(), cache_.tokens.size());
  EXPECT_EQ(bundle->rerank_cache.tokens[0].norm_title,
            cache_.tokens[0].norm_title);
}

TEST_F(BundleTest, LoadWithoutRerankCacheArtifact) {
  const std::string dir = TempPath("bundle_nocache");
  ASSERT_TRUE(Save(dir, /*version=*/4, /*with_cache=*/false).ok());
  auto bundle = LoadModelBundle(dir);
  ASSERT_TRUE(bundle.ok()) << bundle.status().message();
  EXPECT_FALSE(bundle->has_rerank_cache);
}

TEST_F(BundleTest, ClusteredArtifactRoundTripAndCorruption) {
  retrieval::ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(index_, {}).ok());
  const std::string dir = TempPath("bundle_clustered");
  {
    ModelBundleParts parts;
    parts.model_version = 7;
    parts.domain = "target";
    parts.bi = bi_.get();
    parts.cross = cross_.get();
    parts.kb = &corpus_->kb;
    parts.index = &index_;
    parts.clustered = &clustered;
    ASSERT_TRUE(SaveModelBundle(parts, dir).ok());
  }

  auto bundle = LoadModelBundle(dir);
  ASSERT_TRUE(bundle.ok()) << bundle.status().message();
  ASSERT_TRUE(bundle->has_clustered);
  EXPECT_EQ(bundle->clustered.list_offsets(), clustered.list_offsets());
  EXPECT_EQ(bundle->clustered.list_entries(), clustered.list_entries());

  // Moving the bundle relocates its index, so the clustering must be
  // re-attached at the destination before querying — after which probe
  // results are identical to the original's.
  ModelBundle moved = std::move(*bundle);
  ASSERT_TRUE(moved.clustered.Attach(&moved.index).ok());
  util::Rng rng(73);
  std::vector<float> q(index_.dim());
  for (float& v : q) v = rng.NextFloat(-1, 1);
  const auto want = clustered.TopK(q.data(), 8);
  const auto got = moved.clustered.TopK(q.data(), 8);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got[i].id);
    EXPECT_EQ(want[i].score, got[i].score);
  }

  // A flipped byte or truncation in the clustered artifact fails the whole
  // bundle load with a clean Status, exactly like the legacy artifacts.
  const std::string path = dir + "/clustered.ckpt";
  const std::vector<std::uint8_t> original = ReadAll(path);
  ASSERT_FALSE(original.empty());
  std::vector<std::uint8_t> flipped = original;
  flipped[original.size() / 2] ^= 0x08;
  WriteAll(path, flipped);
  EXPECT_FALSE(LoadModelBundle(dir).ok());
  std::vector<std::uint8_t> truncated(original.begin(), original.end() - 1);
  WriteAll(path, truncated);
  EXPECT_FALSE(LoadModelBundle(dir).ok());
  WriteAll(path, original);
  EXPECT_TRUE(LoadModelBundle(dir).ok());
}

TEST_F(BundleTest, CorruptionAnywhereIsACleanStatus) {
  const std::string dir = TempPath("bundle_corrupt");
  ASSERT_TRUE(Save(dir).ok());
  // Every artifact plus the manifest: a single flipped byte in any file
  // fails the whole bundle open, and a truncated file does too.
  const std::vector<std::string> files = {"MANIFEST",  "bi.ckpt",
                                          "cross.ckpt", "kb.ckpt",
                                          "index.ckpt", "rerank.ckpt"};
  for (const std::string& file : files) {
    const std::string path = dir + "/" + file;
    const std::vector<std::uint8_t> original = ReadAll(path);
    ASSERT_FALSE(original.empty()) << file;

    std::vector<std::uint8_t> flipped = original;
    flipped[original.size() / 2] ^= 0x10;
    WriteAll(path, flipped);
    auto corrupt = LoadModelBundle(dir);
    EXPECT_FALSE(corrupt.ok()) << "flipped byte in " << file;

    std::vector<std::uint8_t> truncated(original.begin(),
                                        original.end() - 1);
    WriteAll(path, truncated);
    auto cut = LoadModelBundle(dir);
    EXPECT_FALSE(cut.ok()) << "truncated " << file;

    WriteAll(path, original);
    ASSERT_TRUE(LoadModelBundle(dir).ok()) << "restore of " << file;
  }
  // A missing artifact file is as fatal as a corrupt one.
  const std::string gone = dir + "/index.ckpt";
  const std::vector<std::uint8_t> saved = ReadAll(gone);
  std::remove(gone.c_str());
  EXPECT_FALSE(LoadModelBundle(dir).ok());
  WriteAll(gone, saved);
  EXPECT_TRUE(LoadModelBundle(dir).ok());
}

TEST_F(BundleTest, MissingDirectoryOrManifestIsNotFoundNotACrash) {
  EXPECT_FALSE(LoadModelBundle(TempPath("no_such_bundle")).ok());
}

TEST_F(BundleTest, ManifestShardCountRoundTrip) {
  // A sharded bundle records its shard count in the manifest; an unsharded
  // save omits the field entirely so its manifest bytes stay identical to
  // the pre-sharding format, and reads back as 0.
  const std::string sharded_dir = TempPath("bundle_sharded");
  const std::string plain_dir = TempPath("bundle_unsharded");
  ModelBundleParts parts;
  parts.model_version = 9;
  parts.domain = "target";
  parts.bi = bi_.get();
  parts.cross = cross_.get();
  parts.kb = &corpus_->kb;
  parts.index = &index_;
  parts.num_shards = 4;
  ASSERT_TRUE(SaveModelBundle(parts, sharded_dir).ok());
  parts.num_shards = 0;
  ASSERT_TRUE(SaveModelBundle(parts, plain_dir).ok());

  auto sharded = LoadModelBundle(sharded_dir);
  ASSERT_TRUE(sharded.ok()) << sharded.status().message();
  EXPECT_EQ(sharded->num_shards, 4u);
  auto plain = LoadModelBundle(plain_dir);
  ASSERT_TRUE(plain.ok()) << plain.status().message();
  EXPECT_EQ(plain->num_shards, 0u);

  // The unsharded manifest must not have grown the trailing field: the
  // otherwise-identical saves differ by exactly the one optional u32.
  const std::vector<std::uint8_t> with = ReadAll(sharded_dir + "/MANIFEST");
  const std::vector<std::uint8_t> without = ReadAll(plain_dir + "/MANIFEST");
  ASSERT_FALSE(with.empty());
  ASSERT_FALSE(without.empty());
  EXPECT_EQ(with.size(), without.size() + sizeof(std::uint32_t));
}

}  // namespace
}  // namespace metablink::store
