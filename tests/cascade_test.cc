#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "model/bi_encoder.h"
#include "model/cascade.h"
#include "model/cross_encoder.h"
#include "retrieval/dense_index.h"
#include "serve/linking_server.h"
#include "store/model_bundle.h"
#include "train/cascade_distiller.h"
#include "util/rng.h"

namespace metablink {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "metablink_cascade_" + name;
}

/// One served response stream, fully materialized for byte-identity
/// comparison (ids and exact float scores of every returned prediction).
struct Responses {
  std::vector<std::vector<kb::EntityId>> ids;
  std::vector<std::vector<float>> scores;
  serve::ServerStats stats;

  bool operator==(const Responses& other) const {
    return ids == other.ids && scores == other.scores;
  }
};

/// Cascade contract tests: a small single-domain world served by
/// UNTRAINED encoders. Calibration's budget guarantee and every serving
/// contract (byte identity, tier accounting, determinism) must hold for
/// arbitrary weights — noisy margins are the stress case, not a nuisance.
class CascadeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorOptions gopts;
    gopts.seed = 515;
    gopts.shared_vocab_size = 400;
    gopts.domain_vocab_size = 200;
    data::ZeshelLikeGenerator gen(gopts);
    std::vector<data::DomainSpec> specs(1);
    specs[0].name = "serving";
    specs[0].num_entities = 150;
    specs[0].num_examples = 48;
    specs[0].num_documents = 24;
    corpus_ = std::make_unique<data::Corpus>(std::move(*gen.Generate(specs)));

    model::BiEncoderConfig bi_cfg;
    bi_cfg.features.hasher.num_buckets = 4096;
    bi_cfg.dim = 32;
    model::CrossEncoderConfig cross_cfg;
    cross_cfg.features.hasher.num_buckets = 4096;
    cross_cfg.dim = 32;
    cross_cfg.hidden = 32;
    util::Rng bi_rng(21), cross_rng(22);
    bi_ = std::make_unique<model::BiEncoder>(bi_cfg, &bi_rng);
    cross_ = std::make_unique<model::CrossEncoder>(cross_cfg, &cross_rng);
  }

  serve::ServerOptions BaseOptions() const {
    serve::ServerOptions opts;
    opts.max_batch = 8;
    opts.flush_deadline_us = 200;
    opts.retrieve_k = 16;
    opts.cache_capacity = 64;
    return opts;
  }

  std::unique_ptr<serve::LinkingServer> MakeServer(
      const serve::ServerOptions& opts) {
    auto server = serve::LinkingServer::Create(bi_.get(), cross_.get(),
                                               &corpus_->kb, "serving", opts);
    EXPECT_TRUE(server.ok()) << server.status().message();
    return std::move(*server);
  }

  /// Serves every corpus example through `server` with `threads`
  /// concurrent clients (thread t owns a contiguous slice, so streams are
  /// position-comparable across runs).
  Responses Drive(serve::LinkingServer* server, std::size_t threads = 1) {
    const auto& examples = corpus_->ExamplesIn("serving");
    Responses out;
    out.ids.resize(examples.size());
    out.scores.resize(examples.size());
    const std::size_t per = examples.size() / threads;
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < threads; ++t) {
      clients.emplace_back([&, t] {
        const std::size_t end =
            t + 1 == threads ? examples.size() : (t + 1) * per;
        for (std::size_t i = t * per; i < end; ++i) {
          const auto& ex = examples[i];
          auto got = server->Link(ex.mention, ex.left_context,
                                  ex.right_context, 5);
          ASSERT_TRUE(got.ok()) << got.status().message();
          for (const auto& p : *got) {
            out.ids[i].push_back(p.entity_id);
            out.scores[i].push_back(p.score);
          }
        }
      });
    }
    for (auto& c : clients) c.join();
    out.stats = server->Stats();
    return out;
  }

  model::CascadeModel Calibrate(
      train::CascadeCalibrationReport* report = nullptr) {
    train::CascadeCalibrationOptions opts;
    opts.retrieve_k = 16;
    opts.distill_steps = 60;
    auto calibrated = train::CalibrateCascade(
        *bi_, *cross_, corpus_->kb, "serving",
        corpus_->ExamplesIn("serving"), opts, report);
    EXPECT_TRUE(calibrated.ok()) << calibrated.status().message();
    return *std::move(calibrated);
  }

  /// A synthetic scorer-bearing cascade sized for this cross-encoder.
  model::CascadeModel WithScorer(model::CascadeConfig config) const {
    model::CascadeModel m;
    m.config = config;
    m.weights.assign(model::CascadeFeatureCount(cross_->config().dim), 0.0f);
    return m;
  }

  std::unique_ptr<data::Corpus> corpus_;
  std::unique_ptr<model::BiEncoder> bi_;
  std::unique_ptr<model::CrossEncoder> cross_;
};

// ---- Calibration -----------------------------------------------------------

TEST_F(CascadeTest, CalibrationNeverNetWorseOnItsOwnSet) {
  train::CascadeCalibrationReport report;
  const model::CascadeModel cascade = Calibrate(&report);
  EXPECT_EQ(report.examples, corpus_->ExamplesIn("serving").size());
  // The harm budget defaults to 0: the simulated cascade may not answer
  // worse than full rerank on the calibration set, net — even with these
  // untrained, uncorrelated encoders.
  EXPECT_GE(report.accuracy_cascade, report.accuracy_full);
  EXPECT_GE(cascade.config.rerank_head_k, 1u);
  EXPECT_LE(cascade.config.rerank_head_k, 16u);
  EXPECT_FALSE(std::isnan(cascade.config.margin_tau));
  EXPECT_FALSE(std::isnan(cascade.config.band_epsilon));
  EXPECT_EQ(report.exit_eligible + report.distill_eligible <= report.examples,
            true);
}

TEST_F(CascadeTest, CalibrationIsDeterministic) {
  const model::CascadeModel a = Calibrate();
  const model::CascadeModel b = Calibrate();
  EXPECT_EQ(a.config.margin_tau, b.config.margin_tau);
  EXPECT_EQ(a.config.distill_tau, b.config.distill_tau);
  EXPECT_EQ(a.config.band_epsilon, b.config.band_epsilon);
  EXPECT_EQ(a.config.rerank_head_k, b.config.rerank_head_k);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.bias, b.bias);
}

// ---- Serving byte-identity -------------------------------------------------

TEST_F(CascadeTest, CascadeOffIsByteIdenticalToPlainServer) {
  const model::CascadeModel cascade = Calibrate();
  auto plain = MakeServer(BaseOptions());
  const Responses base = Drive(plain.get());

  serve::ServerOptions off = BaseOptions();
  off.cascade = &cascade;  // present but not enabled
  auto off_server = MakeServer(off);
  const Responses off_run = Drive(off_server.get());

  EXPECT_TRUE(base == off_run);
  // Off = every request is a full rerank.
  EXPECT_EQ(off_run.stats.rerank_full, off_run.stats.requests);
  EXPECT_EQ(off_run.stats.rerank_exited, 0u);
  EXPECT_EQ(off_run.stats.rerank_distilled, 0u);
}

TEST_F(CascadeTest, ForcedFullHeadIsByteIdenticalThroughCascadePath) {
  auto plain = MakeServer(BaseOptions());
  const Responses base = Drive(plain.get());

  // Never exit, never distill, head cap = retrieve_k: the cascade code
  // path must reproduce full rerank byte for byte.
  model::CascadeModel fullhead;
  fullhead.config.rerank_head_k = 16;
  serve::ServerOptions on = BaseOptions();
  on.use_cascade = true;
  on.cascade = &fullhead;
  auto on_server = MakeServer(on);
  const Responses run = Drive(on_server.get());

  EXPECT_TRUE(base == run);
  EXPECT_EQ(run.stats.rerank_full, run.stats.requests);
}

// ---- Tier routing and accounting -------------------------------------------

TEST_F(CascadeTest, TierCountersAlwaysSumToRequests) {
  const model::CascadeModel cascade = Calibrate();
  serve::ServerOptions on = BaseOptions();
  on.use_cascade = true;
  on.cascade = &cascade;
  auto server = MakeServer(on);
  const Responses run = Drive(server.get());
  EXPECT_EQ(run.stats.rerank_exited + run.stats.rerank_distilled +
                run.stats.rerank_full,
            run.stats.requests);
  EXPECT_EQ(run.stats.requests, corpus_->ExamplesIn("serving").size());
}

TEST_F(CascadeTest, ZeroMarginTauExitsEveryRequest) {
  model::CascadeModel cascade;  // margin_tau overridden below
  serve::ServerOptions on = BaseOptions();
  on.use_cascade = true;
  on.cascade = &cascade;
  on.margin_tau = 0.0f;  // margin >= 0 always holds
  auto server = MakeServer(on);
  const Responses run = Drive(server.get());
  EXPECT_EQ(run.stats.rerank_exited, run.stats.requests);
  EXPECT_EQ(run.stats.rerank_full, 0u);
}

TEST_F(CascadeTest, InfiniteMarginTauNeverExits) {
  model::CascadeModel cascade;  // default margin_tau = +inf, no scorer
  cascade.config.rerank_head_k = 4;
  serve::ServerOptions on = BaseOptions();
  on.use_cascade = true;
  on.cascade = &cascade;
  auto server = MakeServer(on);
  const Responses run = Drive(server.get());
  EXPECT_EQ(run.stats.rerank_exited, 0u);
  EXPECT_EQ(run.stats.rerank_full, run.stats.requests);
}

TEST_F(CascadeTest, RetrieveKOneExitsEverything) {
  // A single candidate has margin +inf, which clears any finite tau; with
  // the cascade on there is nothing to rerank.
  model::CascadeModel cascade;
  serve::ServerOptions on = BaseOptions();
  on.retrieve_k = 1;
  on.use_cascade = true;
  on.cascade = &cascade;
  on.margin_tau = 1e6f;
  auto server = MakeServer(on);
  const Responses run = Drive(server.get());
  EXPECT_EQ(run.stats.rerank_exited, run.stats.requests);
}

TEST_F(CascadeTest, ZeroDistillTauRoutesEverythingThroughScorer) {
  model::CascadeConfig config;
  config.margin_tau = kInf;  // never exit
  config.distill_tau = 0.0f;
  config.rerank_head_k = 8;
  const model::CascadeModel cascade = WithScorer(config);
  ASSERT_TRUE(cascade.has_scorer());
  serve::ServerOptions on = BaseOptions();
  on.use_cascade = true;
  on.cascade = &cascade;
  auto server = MakeServer(on);
  const Responses run = Drive(server.get());
  EXPECT_EQ(run.stats.rerank_distilled, run.stats.requests);
  EXPECT_EQ(run.stats.rerank_full, 0u);
}

TEST_F(CascadeTest, BandZeroHeadOneKeepsRetrievalTop1) {
  // band 0 + cap 1: the "head" is just the retrieval winner, so the full
  // tier can only rescore it — top-1 id must equal retrieval's top-1.
  model::CascadeModel exit_all;
  serve::ServerOptions exit_opts = BaseOptions();
  exit_opts.use_cascade = true;
  exit_opts.cascade = &exit_all;
  exit_opts.margin_tau = 0.0f;
  auto exit_server = MakeServer(exit_opts);
  const Responses retrieval_order = Drive(exit_server.get());

  model::CascadeModel narrow;
  narrow.config.band_epsilon = 0.0f;
  narrow.config.rerank_head_k = 1;
  serve::ServerOptions on = BaseOptions();
  on.use_cascade = true;
  on.cascade = &narrow;
  auto server = MakeServer(on);
  const Responses run = Drive(server.get());
  ASSERT_EQ(run.ids.size(), retrieval_order.ids.size());
  for (std::size_t i = 0; i < run.ids.size(); ++i) {
    ASSERT_FALSE(run.ids[i].empty());
    EXPECT_EQ(run.ids[i][0], retrieval_order.ids[i][0]) << "request " << i;
  }
}

TEST_F(CascadeTest, SerialAndPooledClientsAreByteIdentical) {
  const model::CascadeModel cascade = Calibrate();
  serve::ServerOptions on = BaseOptions();
  on.use_cascade = true;
  on.cascade = &cascade;
  auto serial_server = MakeServer(on);
  const Responses serial = Drive(serial_server.get(), 1);
  auto pooled_server = MakeServer(on);
  const Responses pooled = Drive(pooled_server.get(), 4);
  EXPECT_TRUE(serial == pooled);
  EXPECT_EQ(serial.stats.rerank_exited, pooled.stats.rerank_exited);
  EXPECT_EQ(serial.stats.rerank_distilled, pooled.stats.rerank_distilled);
  EXPECT_EQ(serial.stats.rerank_full, pooled.stats.rerank_full);
}

// ---- Artifact persistence --------------------------------------------------

TEST_F(CascadeTest, ArtifactRoundTripsThroughFile) {
  train::CascadeCalibrationReport report;
  const model::CascadeModel saved = Calibrate(&report);
  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(saved.SaveToFile(path).ok());
  model::CascadeModel loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_EQ(loaded.config.margin_tau, saved.config.margin_tau);
  EXPECT_EQ(loaded.config.distill_tau, saved.config.distill_tau);
  EXPECT_EQ(loaded.config.band_epsilon, saved.config.band_epsilon);
  EXPECT_EQ(loaded.config.rerank_head_k, saved.config.rerank_head_k);
  EXPECT_EQ(loaded.weights, saved.weights);
  EXPECT_EQ(loaded.bias, saved.bias);
  EXPECT_EQ(loaded.has_scorer(), saved.has_scorer());
}

TEST_F(CascadeTest, EverySingleBitFlipInArtifactIsRejected) {
  model::CascadeModel model;
  model.config.margin_tau = 0.25f;
  model.config.rerank_head_k = 4;
  model.weights.assign(model::CascadeFeatureCount(8), 0.125f);
  model.bias = -0.5f;
  const std::string path = TempPath("bitflip.ckpt");
  ASSERT_TRUE(model.SaveToFile(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (char bit : {char(0x01), char(0x80)}) {
      std::vector<char> flipped = bytes;
      flipped[byte] ^= bit;
      const std::string bad = TempPath("bitflip_bad.ckpt");
      std::ofstream out(bad, std::ios::binary | std::ios::trunc);
      out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
      out.close();
      model::CascadeModel reloaded;
      EXPECT_FALSE(reloaded.LoadFromFile(bad).ok())
          << "bit flip at byte " << byte << " went undetected";
    }
  }
}

TEST_F(CascadeTest, LoadRejectsMalformedPayloads) {
  auto save_payload = [&](const model::CascadeModel& m) {
    util::BinaryWriter writer;
    m.Save(&writer);
    return writer.TakeBuffer();
  };
  auto load = [&](std::vector<std::uint8_t> bytes) {
    util::BinaryReader reader(std::move(bytes));
    model::CascadeModel m;
    return m.Load(&reader);
  };

  model::CascadeModel good;
  good.config.rerank_head_k = 4;
  EXPECT_TRUE(load(save_payload(good)).ok());

  {  // Wrong leading tag.
    auto bytes = save_payload(good);
    bytes[0] ^= 0xFF;
    EXPECT_FALSE(load(std::move(bytes)).ok());
  }
  {  // head_k = 0 is never servable.
    model::CascadeModel bad = good;
    bad.config.rerank_head_k = 0;
    EXPECT_FALSE(load(save_payload(bad)).ok());
  }
  {  // NaN threshold.
    model::CascadeModel bad = good;
    bad.config.margin_tau = std::nanf("");
    EXPECT_FALSE(load(save_payload(bad)).ok());
  }
  {  // Negative threshold.
    model::CascadeModel bad = good;
    bad.config.band_epsilon = -1.0f;
    EXPECT_FALSE(load(save_payload(bad)).ok());
  }
  {  // Weight count below any tower dimension's feature count.
    model::CascadeModel bad = good;
    bad.weights.assign(model::kNumCascadeBaseFeatures +
                           model::kNumOverlapFeatures + 1,
                       0.0f);
    EXPECT_FALSE(load(save_payload(bad)).ok());
  }
  {  // Odd dimension remainder matches no tower (needs 2*d floats).
    model::CascadeModel bad = good;
    bad.weights.assign(model::CascadeFeatureCount(8) + 1, 0.0f);
    EXPECT_FALSE(load(save_payload(bad)).ok());
  }
  {  // NaN scorer weight.
    model::CascadeModel bad = good;
    bad.weights.assign(model::CascadeFeatureCount(8), 0.0f);
    bad.weights[5] = std::nanf("");
    EXPECT_FALSE(load(save_payload(bad)).ok());
  }
}

// ---- Bundle integration ----------------------------------------------------

TEST_F(CascadeTest, BundleShipsAndServesTheCascadeArtifact) {
  const auto& ids = corpus_->kb.EntitiesInDomain("serving");
  retrieval::DenseIndex index;
  std::vector<kb::Entity> entities;
  for (kb::EntityId id : ids) entities.push_back(corpus_->kb.entity(id));
  model::EncodeScratch scratch;
  tensor::Tensor emb;
  bi_->EncodeEntitiesInference(entities, &scratch, &emb);
  ASSERT_TRUE(index.Build(std::move(emb), ids).ok());
  model::CrossEntityCache cache;
  cross_->PrecomputeEntities(entities, &cache);

  // The shipped policy exits everything — recognizably different from both
  // the default config (never exits) and ServerOptions::cascade below.
  model::CascadeModel shipped;
  shipped.config.margin_tau = 0.0f;
  const std::string dir = TempPath("bundle");
  store::ModelBundleParts parts;
  parts.model_version = 7;
  parts.domain = "serving";
  parts.bi = bi_.get();
  parts.cross = cross_.get();
  parts.kb = &corpus_->kb;
  parts.index = &index;
  parts.rerank_cache = &cache;
  parts.cascade = &shipped;
  ASSERT_TRUE(store::SaveModelBundle(parts, dir).ok());

  auto loaded = store::LoadModelBundle(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE(loaded->has_cascade);
  EXPECT_EQ(loaded->cascade.config.margin_tau, 0.0f);

  // FromBundle + use_cascade adopts the bundle artifact even when
  // ServerOptions::cascade points at a never-exit policy: the bundle wins.
  model::CascadeModel never_exit;
  serve::ServerOptions on = BaseOptions();
  on.use_cascade = true;
  on.cascade = &never_exit;
  auto server = serve::LinkingServer::FromBundle(dir, on);
  ASSERT_TRUE(server.ok()) << server.status().message();
  const Responses run = Drive(server->get());
  EXPECT_EQ(run.stats.rerank_exited, run.stats.requests);
}

TEST_F(CascadeTest, ServerRejectsScorerDistilledForAnotherDimension) {
  // Cross dim is 32 here; a scorer sized for dim 16 passes the artifact's
  // own shape validation but must be refused at epoch build.
  model::CascadeModel wrong;
  wrong.weights.assign(model::CascadeFeatureCount(16), 0.0f);
  serve::ServerOptions on = BaseOptions();
  on.use_cascade = true;
  on.cascade = &wrong;
  auto server = serve::LinkingServer::Create(bi_.get(), cross_.get(),
                                             &corpus_->kb, "serving", on);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace metablink
