// Tests for the performance substrate: blocked GEMM kernels, parallel graph
// execution, sparsity-aware / parallel / JVP meta-gradients, and heap-based
// top-k retrieval. Golden rule throughout: every fast path must reproduce
// the serial reference (bit-exactly where the design guarantees it, within
// the ISSUE tolerances elsewhere).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <vector>

#include "data/generator.h"
#include "model/bi_encoder.h"
#include "retrieval/dense_index.h"
#include "tensor/grad_workspace.h"
#include "tensor/graph.h"
#include "tensor/kernels.h"
#include "tensor/parameter.h"
#include "tensor/tensor.h"
#include "train/meta_trainer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace metablink {
namespace {

using tensor::Tensor;

Tensor RandomTensor(std::size_t rows, std::size_t cols, util::Rng* rng) {
  Tensor t(rows, cols);
  for (float& v : t.data()) v = rng->NextFloat(-1.0f, 1.0f);
  return t;
}

// ---- Kernels ---------------------------------------------------------------

TEST(KernelsTest, GemmMatchesNaiveLoops) {
  util::Rng rng(5);
  const std::size_t n = 23, k = 37, m = 19;
  Tensor a = RandomTensor(n, k, &rng);
  Tensor b = RandomTensor(k, m, &rng);
  a.at(4, 7) = 0.0f;  // exercise the zero-skip path
  for (std::size_t c = 0; c < k; ++c) a.at(9, c) = 0.0f;

  Tensor expected(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      }
      expected.at(i, j) = static_cast<float>(acc);
    }
  }

  Tensor out(n, m);
  tensor::Gemm(a, b, &out, nullptr);
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    EXPECT_NEAR(out.data()[i], expected.data()[i], 1e-4f) << "flat " << i;
  }
}

TEST(KernelsTest, TransposedGemmsMatchNaiveLoops) {
  util::Rng rng(6);
  const std::size_t n = 17, d = 33, m = 21;
  Tensor a = RandomTensor(n, d, &rng);
  Tensor b = RandomTensor(m, d, &rng);

  Tensor tb_out(n, m);
  tensor::GemmTransposeB(a, b, &tb_out, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      double acc = 0.0;
      for (std::size_t c = 0; c < d; ++c) {
        acc += static_cast<double>(a.at(i, c)) * b.at(j, c);
      }
      EXPECT_NEAR(tb_out.at(i, j), static_cast<float>(acc), 1e-4f);
    }
  }

  Tensor c = RandomTensor(n, m, &rng);
  Tensor ta_out(d, m);
  tensor::GemmTransposeA(a, c, &ta_out, nullptr);
  for (std::size_t p = 0; p < d; ++p) {
    for (std::size_t j = 0; j < m; ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += static_cast<double>(a.at(i, p)) * c.at(i, j);
      }
      EXPECT_NEAR(ta_out.at(p, j), static_cast<float>(acc), 1e-4f);
    }
  }
}

TEST(KernelsTest, PooledGemmsAreBitIdenticalToSerial) {
  util::Rng rng(7);
  util::ThreadPool pool(4);
  const std::size_t n = 61, k = 47, m = 29;
  Tensor a = RandomTensor(n, k, &rng);
  Tensor b = RandomTensor(k, m, &rng);
  Tensor bt = RandomTensor(m, k, &rng);
  Tensor c = RandomTensor(n, m, &rng);

  Tensor serial(n, m), pooled(n, m);
  tensor::Gemm(a, b, &serial, nullptr);
  tensor::Gemm(a, b, &pooled, &pool);
  EXPECT_EQ(serial.data(), pooled.data());

  Tensor serial_tb(n, m), pooled_tb(n, m);
  tensor::GemmTransposeB(a, bt, &serial_tb, nullptr);
  tensor::GemmTransposeB(a, bt, &pooled_tb, &pool);
  EXPECT_EQ(serial_tb.data(), pooled_tb.data());

  Tensor serial_ta(k, m), pooled_ta(k, m);
  tensor::GemmTransposeA(a, c, &serial_ta, nullptr);
  tensor::GemmTransposeA(a, c, &pooled_ta, &pool);
  EXPECT_EQ(serial_ta.data(), pooled_ta.data());
}

// ---- Thread pool -----------------------------------------------------------

TEST(ThreadPoolTest, NestedParallelForDegradesToSerialInsteadOfDeadlock) {
  util::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  // Before the fix this deadlocked: outer tasks occupied every worker while
  // their inner ParallelFor waited on tasks no free worker could run.
  pool.ParallelFor(4, [&](std::size_t) {
    EXPECT_TRUE(pool.OnWorkerThread());
    pool.ParallelFor(8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
  EXPECT_FALSE(pool.OnWorkerThread());
}

TEST(ThreadPoolTest, ParallelForChunksCoversRangeWithDenseChunkIds) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  std::atomic<std::size_t> max_chunk{0};
  const std::size_t used = pool.ParallelForChunks(
      100, 7, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        std::size_t seen = max_chunk.load();
        while (chunk > seen && !max_chunk.compare_exchange_weak(seen, chunk)) {
        }
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
  EXPECT_GE(used, 1u);
  EXPECT_LE(used, 7u);
  EXPECT_EQ(max_chunk.load() + 1, used);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---- Shared fixtures for graph / meta tests --------------------------------

model::BiEncoderConfig SmallBiConfig() {
  model::BiEncoderConfig cfg;
  cfg.features.hasher.num_buckets = 1024;
  cfg.dim = 16;
  return cfg;
}

data::Corpus MakeCorpus(std::uint64_t seed) {
  data::GeneratorOptions opts;
  opts.seed = seed;
  opts.shared_vocab_size = 300;
  opts.domain_vocab_size = 150;
  data::ZeshelLikeGenerator gen(opts);
  std::vector<data::DomainSpec> specs(1);
  specs[0].name = "d";
  specs[0].num_entities = 60;
  specs[0].num_examples = 240;
  specs[0].num_documents = 60;
  return std::move(*gen.Generate(specs));
}

// ---- Parallel graph execution ---------------------------------------------

TEST(ParallelGraphTest, PooledForwardAndBackwardMatchSerial) {
  data::Corpus corpus = MakeCorpus(21);
  const auto& examples = corpus.ExamplesIn("d");
  std::vector<data::LinkingExample> batch(examples.begin(),
                                          examples.begin() + 24);

  struct Out {
    std::vector<float> values;
    std::vector<float> grads;
  };
  auto run = [&](util::ThreadPool* pool) {
    util::Rng rng(3);
    model::BiEncoder model(SmallBiConfig(), &rng);
    tensor::Graph g;
    g.SetPool(pool);
    tensor::Var losses = model.InBatchLoss(&g, batch, corpus.kb);
    model.params()->ZeroGrads();
    g.Backward(losses);
    return Out{g.value(losses).data(), model.params()->FlattenGrads()};
  };

  util::ThreadPool pool(4);
  const Out serial = run(nullptr);
  const Out pooled = run(&pool);
  ASSERT_EQ(serial.values.size(), pooled.values.size());
  for (std::size_t i = 0; i < serial.values.size(); ++i) {
    EXPECT_NEAR(serial.values[i], pooled.values[i], 1e-6f) << "value " << i;
  }
  ASSERT_EQ(serial.grads.size(), pooled.grads.size());
  for (std::size_t i = 0; i < serial.grads.size(); ++i) {
    EXPECT_NEAR(serial.grads[i], pooled.grads[i], 1e-6f) << "grad " << i;
  }
}

TEST(ParallelGraphTest, SparsitySkipBackwardMatchesDenseTraversal) {
  data::Corpus corpus = MakeCorpus(22);
  const auto& examples = corpus.ExamplesIn("d");
  std::vector<data::LinkingExample> batch(examples.begin(),
                                          examples.begin() + 16);
  util::Rng rng(4);
  model::BiEncoder model(SmallBiConfig(), &rng);
  tensor::Graph g;
  tensor::Var losses = model.InBatchLoss(&g, batch, corpus.kb);

  std::vector<float> one_hot(batch.size(), 0.0f);
  one_hot[5] = 1.0f;

  model.params()->ZeroGrads();
  tensor::GradWorkspace dense_ws;
  dense_ws.set_sparsity_skip(false);
  g.BackwardWithSeed(losses, one_hot, &dense_ws);
  const std::vector<float> dense = model.params()->FlattenGrads();

  model.params()->ZeroGrads();
  tensor::GradWorkspace sparse_ws;  // skip enabled by default
  g.BackwardWithSeed(losses, one_hot, &sparse_ws);
  const std::vector<float> sparse = model.params()->FlattenGrads();

  // Skipped closures only ever add exact zeros, so this is equality, not a
  // tolerance comparison.
  EXPECT_EQ(dense, sparse);
}

TEST(ParallelGraphTest, ScratchModeBackwardMatchesDirectMode) {
  data::Corpus corpus = MakeCorpus(23);
  const auto& examples = corpus.ExamplesIn("d");
  std::vector<data::LinkingExample> batch(examples.begin(),
                                          examples.begin() + 16);
  util::Rng rng(5);
  model::BiEncoder model(SmallBiConfig(), &rng);
  tensor::Graph g;
  tensor::Var losses = model.InBatchLoss(&g, batch, corpus.kb);

  std::vector<float> direction(model.params()->TotalSize());
  util::Rng dir_rng(6);
  for (float& v : direction) v = dir_rng.NextFloat(-0.1f, 0.1f);

  tensor::GradScratch scratch(model.params());
  std::vector<float> one_hot(batch.size(), 0.0f);
  for (std::size_t j = 0; j < batch.size(); ++j) {
    one_hot[j] = 1.0f;

    model.params()->ZeroGrads();
    tensor::GradWorkspace direct_ws;
    g.BackwardWithSeed(losses, one_hot, &direct_ws);
    const double direct = model.params()->GradDot(direction);

    scratch.Reset();
    tensor::GradWorkspace scratch_ws(&scratch);
    g.BackwardWithSeed(losses, one_hot, &scratch_ws);
    const double via_scratch = scratch.Dot(direction);

    one_hot[j] = 0.0f;
    EXPECT_NEAR(direct, via_scratch, 1e-6 * (1.0 + std::abs(direct)))
        << "example " << j;
  }
}

TEST(ParallelGraphTest, JvpMatchesPerExampleBackwardDots) {
  data::Corpus corpus = MakeCorpus(24);
  const auto& examples = corpus.ExamplesIn("d");
  std::vector<data::LinkingExample> batch(examples.begin(),
                                          examples.begin() + 16);
  util::Rng rng(7);
  model::BiEncoder model(SmallBiConfig(), &rng);
  tensor::Graph g;
  tensor::Var losses = model.InBatchLoss(&g, batch, corpus.kb);

  // Load a deterministic direction into Parameter::grad — the state the
  // meta trainer leaves after the seed-batch backward (g_meta).
  model.params()->ZeroGrads();
  util::Rng dir_rng(8);
  for (const auto& p : model.params()->parameters()) {
    for (std::size_t r = 0; r < p->grad.rows(); ++r) {
      for (std::size_t c = 0; c < p->grad.cols(); ++c) {
        p->grad.at(r, c) = dir_rng.NextFloat(-0.05f, 0.05f);
      }
      p->TouchRow(static_cast<std::uint32_t>(r));
    }
  }
  const std::vector<float> direction = model.params()->FlattenGrads();

  const Tensor tangent = g.Jvp(losses);
  ASSERT_EQ(tangent.rows(), batch.size());

  std::vector<float> one_hot(batch.size(), 0.0f);
  tensor::GradScratch scratch(model.params());
  for (std::size_t j = 0; j < batch.size(); ++j) {
    one_hot[j] = 1.0f;
    scratch.Reset();
    tensor::GradWorkspace ws(&scratch);
    g.BackwardWithSeed(losses, one_hot, &ws);
    one_hot[j] = 0.0f;
    const double reverse = scratch.Dot(direction);
    EXPECT_NEAR(tangent.at(j, 0), reverse, 1e-4 * (1.0 + std::abs(reverse)))
        << "example " << j;
  }
}

// ---- Meta step golden weights ---------------------------------------------

TEST(MetaStepTest, ParallelAndJvpWeightsMatchSerial) {
  data::Corpus corpus = MakeCorpus(25);
  const auto& examples = corpus.ExamplesIn("d");
  std::vector<data::LinkingExample> syn(examples.begin(),
                                        examples.begin() + 24);
  std::vector<data::LinkingExample> seed(examples.begin() + 24,
                                         examples.begin() + 32);

  util::Rng rng(9);
  model::BiEncoder model(SmallBiConfig(), &rng);
  model::BiEncoder* m = &model;
  const kb::KnowledgeBase* kb = &corpus.kb;
  const std::vector<float> initial = model.params()->FlattenValues();

  util::ThreadPool pool(4);
  auto step_weights = [&](train::MetaGrad mode, util::ThreadPool* p,
                          std::vector<float>* out) {
    ASSERT_TRUE(model.params()->LoadValues(initial).ok());
    train::MetaTrainOptions opts;
    opts.meta_grad = mode;
    opts.pool = p;
    train::MetaReweightTrainer meta(
        opts, model.params(),
        [m, kb](tensor::Graph* g,
                const std::vector<data::LinkingExample>& batch) {
          return m->InBatchLoss(g, batch, *kb);
        });
    auto w = meta.Step(syn, seed);
    ASSERT_TRUE(w.ok());
    *out = *w;
  };

  std::vector<float> serial, parallel, jvp;
  ASSERT_NO_FATAL_FAILURE(
      step_weights(train::MetaGrad::kPerExample, nullptr, &serial));
  ASSERT_NO_FATAL_FAILURE(
      step_weights(train::MetaGrad::kPerExample, &pool, &parallel));
  ASSERT_NO_FATAL_FAILURE(step_weights(train::MetaGrad::kJvp, nullptr, &jvp));

  ASSERT_EQ(serial.size(), syn.size());
  ASSERT_EQ(parallel.size(), syn.size());
  ASSERT_EQ(jvp.size(), syn.size());
  for (std::size_t j = 0; j < syn.size(); ++j) {
    EXPECT_NEAR(serial[j], parallel[j], 1e-5f) << "example " << j;
    EXPECT_NEAR(serial[j], jvp[j], 1e-5f) << "example " << j;
  }
}

// ---- Retrieval -------------------------------------------------------------

// The pre-heap implementation: materialize every score, partial_sort with
// the same (score desc, id asc) order the index promises.
std::vector<retrieval::ScoredEntity> ReferenceTopK(
    const Tensor& embeddings, const std::vector<kb::EntityId>& ids,
    const float* query, std::size_t k) {
  std::vector<retrieval::ScoredEntity> scored(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    scored[i].id = ids[i];
    scored[i].score =
        tensor::Dot(query, embeddings.row_data(i), embeddings.cols());
  }
  k = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    [](const retrieval::ScoredEntity& a,
                       const retrieval::ScoredEntity& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  scored.resize(k);
  return scored;
}

TEST(TopKTest, HeapSelectionMatchesPartialSortIncludingTies) {
  const std::size_t n = 700, d = 8;
  util::Rng rng(11);
  Tensor embeddings(n, d);
  std::vector<kb::EntityId> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] = static_cast<kb::EntityId>(i + 1);
    // Coarse quantization forces plenty of exact score ties, exercising the
    // id tie-break in both implementations.
    for (std::size_t c = 0; c < d; ++c) {
      embeddings.at(i, c) = std::round(rng.NextFloat(-1.0f, 1.0f));
    }
  }
  retrieval::DenseIndex index;
  Tensor copy = embeddings;
  ASSERT_TRUE(index.Build(std::move(copy), ids).ok());

  util::Rng qrng(12);
  retrieval::TopKScratch scratch;
  std::vector<retrieval::ScoredEntity> got;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> query(d);
    for (float& v : query) v = std::round(qrng.NextFloat(-1.0f, 1.0f));
    for (std::size_t k : {std::size_t{1}, std::size_t{16}, std::size_t{64},
                          n, n + 5}) {
      const auto expected = ReferenceTopK(embeddings, ids, query.data(), k);
      index.TopKInto(query.data(), k, &scratch, &got);
      ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "k=" << k << " rank " << i;
        EXPECT_EQ(got[i].score, expected[i].score)
            << "k=" << k << " rank " << i;
      }
    }
  }
}

TEST(TopKTest, BlockedBatchTopKMatchesSingleQueryPath) {
  const std::size_t n = 900, d = 12, nq = 37, k = 20;
  util::Rng rng(13);
  Tensor embeddings = RandomTensor(n, d, &rng);
  std::vector<kb::EntityId> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] = static_cast<kb::EntityId>(i + 100);
  }
  retrieval::DenseIndex index;
  ASSERT_TRUE(index.Build(std::move(embeddings), ids).ok());

  Tensor queries = RandomTensor(nq, d, &rng);
  util::ThreadPool pool(4);
  const auto serial = index.BatchTopK(queries, k, nullptr);
  const auto pooled = index.BatchTopK(queries, k, &pool);
  ASSERT_EQ(serial.size(), nq);
  ASSERT_EQ(pooled.size(), nq);
  for (std::size_t q = 0; q < nq; ++q) {
    const auto single = index.TopK(queries.row_data(q), k);
    ASSERT_EQ(serial[q].size(), single.size());
    ASSERT_EQ(pooled[q].size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(serial[q][i].id, single[i].id) << "q=" << q << " rank " << i;
      EXPECT_EQ(serial[q][i].score, single[i].score)
          << "q=" << q << " rank " << i;
      EXPECT_EQ(pooled[q][i].id, single[i].id) << "q=" << q << " rank " << i;
      EXPECT_EQ(pooled[q][i].score, single[i].score)
          << "q=" << q << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace metablink
