#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "data/generator.h"
#include "gen/bad_data.h"
#include "gen/exact_matcher.h"
#include "gen/rewriter.h"
#include "gen/seed_selector.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace metablink::gen {
namespace {

kb::Entity MakeEntity(const std::string& title, const std::string& desc,
                      const std::string& domain = "d") {
  kb::Entity e;
  e.title = title;
  e.description = desc;
  e.domain = domain;
  return e;
}

// ---- ExactMatcher ----------------------------------------------------------

class ExactMatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dragon_ = *kb_.AddEntity(MakeEntity(
        "red dragon", "red dragon is a beast of the northern caves"));
    knight_ = *kb_.AddEntity(
        MakeEntity("knight", "knight is a warrior of the realm"));
    sora1_ = *kb_.AddEntity(MakeEntity("sora (satellite)", "sora in orbit"));
    sora2_ = *kb_.AddEntity(MakeEntity("sora (program)", "sora the tool"));
  }

  kb::KnowledgeBase kb_;
  kb::EntityId dragon_, knight_, sora1_, sora2_;
};

TEST_F(ExactMatcherTest, FindsPlantedTitle) {
  ExactMatcher matcher(kb_, "d");
  auto matches = matcher.MatchAll(
      {"the brave knight rode toward the castle at dawn"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].entity_id, knight_);
  EXPECT_EQ(matches[0].mention, "knight");
  EXPECT_EQ(matches[0].source, data::ExampleSource::kExactMatch);
  EXPECT_TRUE(util::Contains(matches[0].left_context, "brave"));
  EXPECT_TRUE(util::Contains(matches[0].right_context, "rode"));
}

TEST_F(ExactMatcherTest, GreedyLongestMatch) {
  ExactMatcher matcher(kb_, "d");
  // "red dragon" must match the two-token title, not stop after "red".
  auto matches = matcher.MatchAll({"beware the red dragon of the caves"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].entity_id, dragon_);
}

TEST_F(ExactMatcherTest, MatchesDisambiguatedTitleWithParens) {
  ExactMatcher matcher(kb_, "d");
  auto matches = matcher.MatchAll({"they launched sora (satellite) today"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].entity_id, sora1_);
}

TEST_F(ExactMatcherTest, NoMatchesInUnrelatedText) {
  ExactMatcher matcher(kb_, "d");
  EXPECT_TRUE(matcher.MatchAll({"nothing relevant here at all"}).empty());
  EXPECT_TRUE(matcher.MatchAll({""}).empty());
}

TEST_F(ExactMatcherTest, MultipleMatchesInOneDocument) {
  ExactMatcher matcher(kb_, "d");
  auto matches =
      matcher.MatchAll({"a knight fought the red dragon and the knight won"});
  EXPECT_EQ(matches.size(), 3u);
}

TEST_F(ExactMatcherTest, ContextLengthRespected) {
  ExactMatcherOptions opts;
  opts.context_len = 2;
  ExactMatcher matcher(kb_, "d", opts);
  auto matches =
      matcher.MatchAll({"one two three four knight five six seven"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].left_context, "three four");
  EXPECT_EQ(matches[0].right_context, "five six");
}

TEST_F(ExactMatcherTest, WrongDomainIndexesNothing) {
  ExactMatcher matcher(kb_, "other");
  EXPECT_TRUE(matcher.MatchAll({"the knight is here"}).empty());
}

// ---- MentionRewriter -------------------------------------------------------

class RewriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    generator_ = std::make_unique<data::ZeshelLikeGenerator>([] {
      data::GeneratorOptions opts;
      opts.seed = 17;
      opts.shared_vocab_size = 300;
      opts.domain_vocab_size = 150;
      return opts;
    }());
    std::vector<data::DomainSpec> specs(2);
    specs[0].name = "src";
    specs[0].num_entities = 80;
    specs[0].num_examples = 300;
    specs[1].name = "tgt";
    specs[1].num_entities = 80;
    specs[1].num_examples = 100;
    specs[1].num_documents = 120;
    corpus_ = std::make_unique<data::Corpus>(
        std::move(*generator_->Generate(specs)));
  }

  std::unique_ptr<data::ZeshelLikeGenerator> generator_;
  std::unique_ptr<data::Corpus> corpus_;
};

TEST_F(RewriterTest, TrainRequiresExamples) {
  MentionRewriter rewriter;
  util::Rng rng(1);
  EXPECT_FALSE(rewriter.Train(corpus_->kb, {}, &rng).ok());
  EXPECT_FALSE(rewriter.trained());
}

TEST_F(RewriterTest, TrainedRewriterAvoidsTitleTokens) {
  RewriterOptions opts;
  opts.garbage_rate = 0.0;
  opts.mislabel_rate = 0.0;
  MentionRewriter rewriter(opts);
  util::Rng rng(1);
  ASSERT_TRUE(
      rewriter.Train(corpus_->kb, corpus_->ExamplesIn("src"), &rng).ok());
  EXPECT_TRUE(rewriter.trained());

  text::Tokenizer tok;
  for (kb::EntityId id : corpus_->kb.EntitiesInDomain("tgt")) {
    const auto& entity = corpus_->kb.entity(id);
    const std::string mention = rewriter.Rewrite(entity, &rng);
    ASSERT_FALSE(mention.empty());
    auto title_tokens = tok.Tokenize(entity.title);
    std::set<std::string> title_set(title_tokens.begin(), title_tokens.end());
    for (const auto& t : tok.Tokenize(mention)) {
      EXPECT_EQ(title_set.count(t), 0u)
          << "rewritten mention reuses title token " << t;
    }
    // All mention words come from the description.
    auto desc_tokens = tok.Tokenize(entity.description);
    std::set<std::string> desc_set(desc_tokens.begin(), desc_tokens.end());
    for (const auto& t : tok.Tokenize(mention)) {
      EXPECT_EQ(desc_set.count(t), 1u);
    }
    if (id > corpus_->kb.EntitiesInDomain("tgt")[10]) break;  // sample a few
  }
}

TEST_F(RewriterTest, SalienceModelPrefersRecurringContentWords) {
  MentionRewriter rewriter;
  util::Rng rng(1);
  ASSERT_TRUE(
      rewriter.Train(corpus_->kb, corpus_->ExamplesIn("src"), &rng).ok());
  // A description where "vexfor" recurs (signature-like) vs one-off filler.
  std::vector<std::string> desc = {"tharn", "is",     "a",      "vexfor",
                                   "of",    "vexfor", "legend", "stone"};
  auto scores = rewriter.ScoreTokens(desc, {"tharn"});
  double vexfor = scores[3];
  double filler = scores[6];
  EXPECT_GT(vexfor, filler);
}

TEST_F(RewriterTest, GenerateSyntheticDataChangesMentions) {
  RewriterOptions opts;
  opts.garbage_rate = 0.0;
  opts.mislabel_rate = 0.0;
  MentionRewriter rewriter(opts);
  util::Rng rng(1);
  ASSERT_TRUE(
      rewriter.Train(corpus_->kb, corpus_->ExamplesIn("src"), &rng).ok());
  ExactMatcher matcher(corpus_->kb, "tgt");
  auto exact = matcher.MatchAll(corpus_->DocumentsIn("tgt"));
  ASSERT_FALSE(exact.empty());
  auto synthetic = rewriter.GenerateSyntheticData(
      corpus_->kb, exact, corpus_->kb.EntitiesInDomain("tgt"), &rng);
  ASSERT_EQ(synthetic.size(), exact.size());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(synthetic[i].source, data::ExampleSource::kRewritten);
    EXPECT_EQ(synthetic[i].entity_id, exact[i].entity_id);  // no mislabels
    if (synthetic[i].mention != exact[i].mention) ++changed;
  }
  EXPECT_GT(changed, exact.size() * 9 / 10);
}

TEST_F(RewriterTest, MislabelRateApproximatelyRespected) {
  RewriterOptions opts;
  opts.garbage_rate = 0.0;
  opts.mislabel_rate = 0.3;
  MentionRewriter rewriter(opts);
  util::Rng rng(1);
  ASSERT_TRUE(
      rewriter.Train(corpus_->kb, corpus_->ExamplesIn("src"), &rng).ok());
  ExactMatcher matcher(corpus_->kb, "tgt");
  auto exact = matcher.MatchAll(corpus_->DocumentsIn("tgt"));
  auto synthetic = rewriter.GenerateSyntheticData(
      corpus_->kb, exact, corpus_->kb.EntitiesInDomain("tgt"), &rng);
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    if (synthetic[i].entity_id != exact[i].entity_id) ++flipped;
  }
  const double rate = static_cast<double>(flipped) / exact.size();
  EXPECT_NEAR(rate, 0.3, 0.08);
}

TEST_F(RewriterTest, AdaptationFiltersGarbage) {
  // With a high garbage rate, the adapted rewriter must emit fewer
  // out-of-domain candidates than the unadapted one.
  RewriterOptions opts;
  opts.garbage_rate = 0.6;
  opts.mislabel_rate = 0.0;
  MentionRewriter plain(opts), adapted(opts);
  util::Rng rng1(1), rng2(1);
  ASSERT_TRUE(
      plain.Train(corpus_->kb, corpus_->ExamplesIn("src"), &rng1).ok());
  ASSERT_TRUE(
      adapted.Train(corpus_->kb, corpus_->ExamplesIn("src"), &rng2).ok());
  adapted.AdaptToDomain(corpus_->DocumentsIn("tgt"));
  EXPECT_TRUE(adapted.adapted());
  EXPECT_FALSE(plain.adapted());

  // Compare corpus fit of rewritten mentions under the target-domain stats.
  text::TfIdfStats tgt_stats;
  text::Tokenizer tok;
  for (const auto& doc : corpus_->DocumentsIn("tgt")) {
    tgt_stats.AddDocument(tok.Tokenize(doc));
  }
  double plain_ppl = 0, adapted_ppl = 0;
  int n = 0;
  for (kb::EntityId id : corpus_->kb.EntitiesInDomain("tgt")) {
    const auto& e = corpus_->kb.entity(id);
    plain_ppl += tgt_stats.PerplexityProxy(tok.Tokenize(plain.Rewrite(e, &rng1)));
    adapted_ppl +=
        tgt_stats.PerplexityProxy(tok.Tokenize(adapted.Rewrite(e, &rng2)));
    if (++n >= 60) break;
  }
  EXPECT_LT(adapted_ppl, plain_ppl);
}

// ---- seed selectors --------------------------------------------------------

TEST_F(RewriterTest, FilterSeedsEnforceRules) {
  RewriterOptions opts;
  opts.garbage_rate = 0.2;
  MentionRewriter rewriter(opts);
  util::Rng rng(1);
  ASSERT_TRUE(
      rewriter.Train(corpus_->kb, corpus_->ExamplesIn("src"), &rng).ok());
  ExactMatcher matcher(corpus_->kb, "tgt");
  auto exact = matcher.MatchAll(corpus_->DocumentsIn("tgt"));
  auto synthetic = rewriter.GenerateSyntheticData(
      corpus_->kb, exact, corpus_->kb.EntitiesInDomain("tgt"), &rng);
  auto seeds = FilterSeeds(corpus_->kb, synthetic, 25);
  EXPECT_LE(seeds.size(), 25u);
  EXPECT_FALSE(seeds.empty());
  text::Tokenizer tok;
  for (const auto& s : seeds) {
    EXPECT_EQ(s.source, data::ExampleSource::kGold);
    const auto& entity = corpus_->kb.entity(s.entity_id);
    auto title_tokens = tok.Tokenize(entity.title);
    std::set<std::string> title_set(title_tokens.begin(), title_tokens.end());
    auto desc_tokens = tok.Tokenize(entity.description);
    std::set<std::string> desc_set(desc_tokens.begin(), desc_tokens.end());
    for (const auto& t : tok.Tokenize(s.mention)) {
      EXPECT_EQ(title_set.count(t), 0u);
      EXPECT_EQ(desc_set.count(t), 1u);
    }
  }
}

TEST_F(RewriterTest, SelfMatchSeedsComeFromDisambiguatedEntities) {
  auto seeds = SelfMatchSeeds(corpus_->kb, "tgt", 20);
  EXPECT_FALSE(seeds.empty());
  for (const auto& s : seeds) {
    const auto& entity = corpus_->kb.entity(s.entity_id);
    std::string phrase;
    const std::string base = text::StripDisambiguation(entity.title, &phrase);
    EXPECT_FALSE(phrase.empty());
    EXPECT_EQ(s.mention, base);
    EXPECT_EQ(s.domain, "tgt");
  }
}

TEST_F(RewriterTest, HeuristicSeedsCombineAndCap) {
  RewriterOptions opts;
  MentionRewriter rewriter(opts);
  util::Rng rng(1);
  ASSERT_TRUE(
      rewriter.Train(corpus_->kb, corpus_->ExamplesIn("src"), &rng).ok());
  ExactMatcher matcher(corpus_->kb, "tgt");
  auto exact = matcher.MatchAll(corpus_->DocumentsIn("tgt"));
  auto synthetic = rewriter.GenerateSyntheticData(
      corpus_->kb, exact, corpus_->kb.EntitiesInDomain("tgt"), &rng);
  auto seeds = HeuristicSeeds(corpus_->kb, "tgt", synthetic, 30);
  EXPECT_LE(seeds.size(), 30u);
  EXPECT_GE(seeds.size(), 10u);
}

// ---- bad data --------------------------------------------------------------

TEST_F(RewriterTest, InjectBadDataRelinksToWrongEntity) {
  util::Rng rng(5);
  const auto& gold = corpus_->ExamplesIn("tgt");
  auto bad = InjectBadData(corpus_->kb, gold, 50, &rng);
  EXPECT_EQ(bad.size(), 50u);
  for (const auto& b : bad) {
    EXPECT_EQ(b.source, data::ExampleSource::kInjectedBad);
    EXPECT_EQ(corpus_->kb.entity(b.entity_id).domain, "tgt");
  }
  // The relink must actually change labels most of the time: compare to the
  // mention surface's true gold by matching contexts in the source list.
  std::size_t same = 0;
  for (const auto& b : bad) {
    for (const auto& g : gold) {
      if (g.mention == b.mention && g.left_context == b.left_context &&
          g.entity_id == b.entity_id) {
        ++same;
        break;
      }
    }
  }
  EXPECT_EQ(same, 0u);
}

TEST(BadDataTest, EmptySourceYieldsNothing) {
  kb::KnowledgeBase kb;
  util::Rng rng(1);
  EXPECT_TRUE(InjectBadData(kb, {}, 10, &rng).empty());
}

}  // namespace
}  // namespace metablink::gen
