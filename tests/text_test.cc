#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "text/feature_hashing.h"
#include "text/rouge.h"
#include "text/string_metrics.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/rng.h"

namespace metablink::text {
namespace {

// ---- tokenizer -------------------------------------------------------------

TEST(TokenizerTest, BasicWords) {
  Tokenizer tok;
  auto t = tok.Tokenize("Hello, World! 42");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "hello");
  EXPECT_EQ(t[1], "world");
  EXPECT_EQ(t[2], "42");
}

TEST(TokenizerTest, CasePreservedWhenDisabled) {
  Tokenizer tok(TokenizerOptions{.lowercase = false});
  auto t = tok.Tokenize("Hello World");
  EXPECT_EQ(t[0], "Hello");
}

TEST(TokenizerTest, KeepPunctuation) {
  Tokenizer tok(TokenizerOptions{.lowercase = true, .keep_punctuation = true});
  auto t = tok.Tokenize("a (b)");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[1], "(");
  EXPECT_EQ(t[3], ")");
}

TEST(TokenizerTest, ApostropheStaysInWord) {
  Tokenizer tok;
  auto t = tok.Tokenize("misgarth's satellite");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], "misgarth's");
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("  ,.!  ").empty());
}

TEST(NormalizeTest, CollapsesCaseAndPunctuation) {
  EXPECT_EQ(NormalizeForMatch("The  Curse, of GOLD!"), "the curse of gold");
  EXPECT_EQ(NormalizeForMatch(""), "");
  EXPECT_EQ(NormalizeForMatch("...x..."), "x");
}

TEST(StripDisambiguationTest, StripsTrailingParen) {
  std::string phrase;
  EXPECT_EQ(StripDisambiguation("SORA (satellite)", &phrase), "SORA");
  EXPECT_EQ(phrase, "satellite");
}

TEST(StripDisambiguationTest, NoParenUnchanged) {
  std::string phrase = "stale";
  EXPECT_EQ(StripDisambiguation("Jack Atlas", &phrase), "Jack Atlas");
  EXPECT_TRUE(phrase.empty());
}

TEST(StripDisambiguationTest, RequiresSpaceBeforeParen) {
  EXPECT_EQ(StripDisambiguation("F(x)"), "F(x)");
}

// ---- vocabulary ------------------------------------------------------------

TEST(VocabularyTest, FreezeAssignsByFrequency) {
  Vocabulary v;
  v.CountAll({"b", "a", "a", "a", "b", "c"});
  ASSERT_TRUE(v.Freeze().ok());
  EXPECT_EQ(v.Lookup("a"), 1u);  // most frequent after <unk>
  EXPECT_EQ(v.Lookup("b"), 2u);
  EXPECT_EQ(v.Lookup("c"), 3u);
  EXPECT_EQ(v.Lookup("zzz"), Vocabulary::kUnkId);
  EXPECT_EQ(v.size(), 4u);
}

TEST(VocabularyTest, MinFrequencyFilters) {
  Vocabulary v;
  v.CountAll({"a", "a", "b"});
  ASSERT_TRUE(v.Freeze(/*min_freq=*/2).ok());
  EXPECT_NE(v.Lookup("a"), Vocabulary::kUnkId);
  EXPECT_EQ(v.Lookup("b"), Vocabulary::kUnkId);
}

TEST(VocabularyTest, DoubleFreezeFails) {
  Vocabulary v;
  v.Count("a");
  ASSERT_TRUE(v.Freeze().ok());
  EXPECT_FALSE(v.Freeze().ok());
}

TEST(VocabularyTest, EncodeAndTokenOfRoundTrip) {
  Vocabulary v;
  v.CountAll({"x", "y"});
  ASSERT_TRUE(v.Freeze().ok());
  auto ids = v.Encode({"x", "unknown", "y"});
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(v.TokenOf(ids[0]), "x");
  EXPECT_EQ(ids[1], Vocabulary::kUnkId);
  EXPECT_EQ(v.TokenOf(999), "<unk>");
  EXPECT_EQ(v.Frequency("x"), 1u);
}

// ---- feature hashing -------------------------------------------------------

TEST(HashTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(HashBytes("abc", 1), HashBytes("abc", 1));
  EXPECT_NE(HashBytes("abc", 1), HashBytes("abc", 2));
  EXPECT_NE(HashBytes("abc", 1), HashBytes("abd", 1));
}

TEST(FeatureHasherTest, BucketsRespected) {
  FeatureHasherOptions opts;
  opts.num_buckets = 64;
  FeatureHasher hasher(opts);
  auto ids = hasher.HashTokens({"alpha", "beta", "gamma"}, 0);
  EXPECT_FALSE(ids.empty());
  for (auto id : ids) EXPECT_LT(id, 64u);
}

TEST(FeatureHasherTest, FieldSeedSeparatesSpaces) {
  FeatureHasher hasher;
  auto a = hasher.HashTokens({"alpha"}, 1);
  auto b = hasher.HashTokens({"alpha"}, 2);
  EXPECT_NE(a, b);
}

TEST(FeatureHasherTest, UnigramOnlyCount) {
  FeatureHasherOptions opts;
  opts.word_bigrams = false;
  opts.char_ngram_sizes = {};
  FeatureHasher hasher(opts);
  EXPECT_EQ(hasher.HashTokens({"a", "b", "c"}, 0).size(), 3u);
}

TEST(FeatureHasherTest, BigramsAddNMinusOne) {
  FeatureHasherOptions opts;
  opts.char_ngram_sizes = {};
  FeatureHasher hasher(opts);
  EXPECT_EQ(hasher.HashTokens({"a", "b", "c"}, 0).size(), 3u + 2u);
}

TEST(FeatureHasherTest, CharNgramsSharedAcrossSimilarWords) {
  // Words sharing character n-grams must share some hashed features
  // (the surface-similarity channel of the encoders).
  FeatureHasherOptions opts;
  opts.word_unigrams = false;
  opts.word_bigrams = false;
  opts.char_ngram_sizes = {3};
  FeatureHasher hasher(opts);
  auto a = hasher.HashTokens({"dragonfly"}, 0);
  auto b = hasher.HashTokens({"dragonfire"}, 0);
  std::set<std::uint32_t> sa(a.begin(), a.end());
  std::size_t shared = 0;
  for (auto id : b) shared += sa.count(id);
  EXPECT_GE(shared, 4u);  // "#dr","dra","rag","ago","gon"
}

TEST(FeatureHasherTest, EmptyTokensYieldEmptyBag) {
  FeatureHasher hasher;
  EXPECT_TRUE(hasher.HashTokens({}, 0).empty());
}

// ---- string metrics --------------------------------------------------------

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("flaw", "lawn"), EditDistance("lawn", "flaw"));
}

TEST(TokenJaccardTest, Values) {
  EXPECT_DOUBLE_EQ(TokenJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccard({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(TokenJaccard({"a", "a", "b"}, {"a", "b"}), 1.0);  // set
}

TEST(LcsTest, KnownValues) {
  EXPECT_EQ(LcsLength({"a", "b", "c"}, {"a", "c"}), 2u);
  EXPECT_EQ(LcsLength({}, {"a"}), 0u);
  EXPECT_EQ(LcsLength({"x"}, {"y"}), 0u);
}

TEST(OverlapCategoryTest, HighOverlap) {
  EXPECT_EQ(ClassifyOverlap("Jack Atlas", "jack atlas"),
            OverlapCategory::kHighOverlap);
}

TEST(OverlapCategoryTest, MultipleCategories) {
  EXPECT_EQ(ClassifyOverlap("SORA", "SORA (satellite)"),
            OverlapCategory::kMultipleCategories);
}

TEST(OverlapCategoryTest, AmbiguousSubstring) {
  EXPECT_EQ(ClassifyOverlap("Atlas", "Jack Atlas"),
            OverlapCategory::kAmbiguousSubstring);
}

TEST(OverlapCategoryTest, LowOverlap) {
  EXPECT_EQ(ClassifyOverlap("the fourth episode",
                            "The Curse of the Golden Master"),
            OverlapCategory::kLowOverlap);
}

TEST(OverlapCategoryTest, NamesAreStable) {
  EXPECT_STREQ(OverlapCategoryName(OverlapCategory::kLowOverlap),
               "Low Overlap");
  EXPECT_STREQ(OverlapCategoryName(OverlapCategory::kHighOverlap),
               "High Overlap");
}

// ---- rouge -----------------------------------------------------------------

TEST(RougeTest, IdenticalIsPerfect) {
  auto s = RougeN({"a", "b", "c"}, {"a", "b", "c"}, 1);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(RougeTest, DisjointIsZero) {
  auto s = RougeN({"a"}, {"b"}, 1);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(RougeTest, ClippedCounts) {
  // candidate repeats "a" 3x, reference has it once: precision 1/3.
  auto s = RougeN({"a", "a", "a"}, {"a"}, 1);
  EXPECT_NEAR(s.precision, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(RougeTest, Rouge2NeedsBigrams) {
  auto s = RougeN({"a", "b"}, {"a", "b"}, 2);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
  auto short_s = RougeN({"a"}, {"a"}, 2);
  EXPECT_DOUBLE_EQ(short_s.f1, 0.0);  // no bigrams exist
}

TEST(RougeTest, RougeLUsesLcs) {
  auto s = RougeL({"a", "x", "b"}, {"a", "b"});
  EXPECT_NEAR(s.recall, 1.0, 1e-12);
  EXPECT_NEAR(s.precision, 2.0 / 3.0, 1e-12);
}

TEST(RougeTest, CorpusAverage) {
  double f1 = CorpusRougeNF1({{"a"}, {"b"}}, {{"a"}, {"c"}}, 1);
  EXPECT_DOUBLE_EQ(f1, 0.5);
  EXPECT_DOUBLE_EQ(CorpusRougeNF1({}, {}, 1), 0.0);
  EXPECT_DOUBLE_EQ(CorpusRougeNF1({{"a"}}, {}, 1), 0.0);  // misaligned
}

// ---- tf-idf ----------------------------------------------------------------

TEST(TfIdfTest, DocumentFrequencyCountsOncePerDoc) {
  TfIdfStats stats;
  stats.AddDocument({"a", "a", "b"});
  stats.AddDocument({"a", "c"});
  EXPECT_EQ(stats.DocumentFrequency("a"), 2u);
  EXPECT_EQ(stats.DocumentFrequency("b"), 1u);
  EXPECT_EQ(stats.TermCount("a"), 3u);
  EXPECT_EQ(stats.num_documents(), 2u);
  EXPECT_EQ(stats.total_terms(), 5u);
}

TEST(TfIdfTest, RareTokenHasHigherIdf) {
  TfIdfStats stats;
  for (int i = 0; i < 10; ++i) stats.AddDocument({"common", "filler"});
  stats.AddDocument({"rare"});
  EXPECT_GT(stats.Idf("rare"), stats.Idf("common"));
}

TEST(TfIdfTest, TfIdfAlignedWithDoc) {
  TfIdfStats stats;
  stats.AddDocument({"a", "b"});
  auto w = stats.TfIdf({"a", "a", "zzz"});
  ASSERT_EQ(w.size(), 3u);
  EXPECT_GT(w[2], 0.0);   // unseen token: max idf
  EXPECT_GT(w[0], 0.0);
}

TEST(TfIdfTest, PerplexityProxyHigherForUnseen) {
  TfIdfStats stats;
  for (int i = 0; i < 50; ++i) stats.AddDocument({"in", "domain", "words"});
  EXPECT_GT(stats.PerplexityProxy({"never", "seen"}),
            stats.PerplexityProxy({"in", "domain"}));
  EXPECT_DOUBLE_EQ(stats.PerplexityProxy({}), 0.0);
}

// ---- property sweep: edit distance triangle inequality ---------------------

class EditDistanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EditDistanceProperty, TriangleInequalityAndBounds) {
  util::Rng rng(GetParam());
  auto random_word = [&rng]() {
    std::string w;
    std::size_t len = rng.NextUint64(12);
    for (std::size_t i = 0; i < len; ++i) {
      w += static_cast<char>('a' + rng.NextUint64(4));
    }
    return w;
  };
  for (int iter = 0; iter < 50; ++iter) {
    std::string a = random_word(), b = random_word(), c = random_word();
    std::size_t ab = EditDistance(a, b);
    std::size_t bc = EditDistance(b, c);
    std::size_t ac = EditDistance(a, c);
    EXPECT_LE(ac, ab + bc);
    EXPECT_LE(ab, std::max(a.size(), b.size()));
    EXPECT_GE(ab + b.size(), a.size());  // |len diff| <= distance
    EXPECT_EQ(EditDistance(a, a), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistanceProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace metablink::text
