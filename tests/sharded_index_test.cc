#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "retrieval/clustered_index.h"
#include "retrieval/dense_index.h"
#include "retrieval/sharded_index.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace metablink::retrieval {
namespace {

tensor::Tensor MixtureEmbeddings(std::size_t n, std::size_t d,
                                 std::size_t components, float noise,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor centers(components, d);
  for (float& v : centers.data()) v = rng.NextFloat(-1.0f, 1.0f);
  tensor::Tensor t(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % components;
    for (std::size_t j = 0; j < d; ++j) {
      t.at(i, j) =
          centers.at(c, j) + noise * static_cast<float>(rng.NextGaussian());
    }
  }
  return t;
}

std::vector<kb::EntityId> Iota(std::size_t n) {
  std::vector<kb::EntityId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<kb::EntityId>(i);
  return ids;
}

void ExpectSameHits(const std::vector<ScoredEntity>& a,
                    const std::vector<ScoredEntity>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;  // bit-identical fp32
  }
}

TEST(ShardedIndexTest, BuildValidates) {
  ShardedIndex sharded;
  EXPECT_FALSE(sharded.Build(nullptr, 4).ok());
  ClusteredIndex unbuilt;
  EXPECT_FALSE(sharded.Build(&unbuilt, 4).ok());

  DenseIndex base;
  ASSERT_TRUE(
      base.Build(MixtureEmbeddings(60, 8, 4, 0.2f, 1), Iota(60)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());
  // Shard counts clamp to [1, size]: 0 and an oversized request both work.
  ASSERT_TRUE(sharded.Build(&clustered, 0).ok());
  EXPECT_EQ(sharded.num_shards(), 1u);
  ASSERT_TRUE(sharded.Build(&clustered, 1000).ok());
  EXPECT_EQ(sharded.num_shards(), 60u);
}

TEST(ShardedIndexTest, ShardsPartitionEveryList) {
  // Union of per-shard restricted lists == the full lists, with the shard
  // boundaries falling on contiguous row-position slices.
  const std::size_t n = 900, d = 16;
  DenseIndex base;
  ASSERT_TRUE(
      base.Build(MixtureEmbeddings(n, d, 8, 0.2f, 11), Iota(n)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());
  ShardedIndex sharded;
  ASSERT_TRUE(sharded.Build(&clustered, 7).ok());
  ASSERT_EQ(sharded.num_shards(), 7u);
  ASSERT_EQ(sharded.row_bounds().size(), 8u);
  EXPECT_EQ(sharded.row_bounds().front(), 0u);
  EXPECT_EQ(sharded.row_bounds().back(), static_cast<std::uint32_t>(n));
  for (std::size_t s = 0; s + 1 < sharded.row_bounds().size(); ++s) {
    EXPECT_LT(sharded.row_bounds()[s], sharded.row_bounds()[s + 1]);
  }
}

// The tentpole bit-identity matrix: shard counts × nprobe settings ×
// scan forms (fp32 / int8 / PQ), serial and pool-parallel, over data with
// duplicated rows planted across shard boundaries so exact score ties must
// merge in the same (score desc, id asc) order the single index uses.
TEST(ShardedIndexTest, MatchesSingleIndexBitForBit) {
  const std::size_t n = 2400, d = 24, k = 20;
  tensor::Tensor emb = MixtureEmbeddings(n, d, 10, 0.2f, 21);
  // Duplicated rows in different thirds of the row space: with >= 2 shards
  // these land in different shards and tie exactly.
  for (std::size_t j = 0; j < d; ++j) {
    emb.at(900, j) = emb.at(100, j);
    emb.at(1700, j) = emb.at(100, j);
    emb.at(2300, j) = emb.at(42, j);
  }
  util::ThreadPool pool(4);
  util::Rng rng(22);
  std::vector<std::vector<float>> queries(12, std::vector<float>(d));
  for (auto& q : queries) {
    for (float& v : q) v = rng.NextFloat(-1, 1);
  }

  for (int form = 0; form < 3; ++form) {
    DenseIndex base;
    ASSERT_TRUE(base.Build(emb, Iota(n)).ok());
    if (form == 1) base.Quantize();
    ClusteredIndexOptions options;
    options.use_pq = form == 2;
    ClusteredIndex clustered;
    ASSERT_TRUE(clustered.Build(base, options).ok());
    ASSERT_EQ(clustered.pq_built(), form == 2);

    ClusteredScratch single_scratch;
    ShardedIndexScratch sharded_scratch;
    std::vector<ScoredEntity> single_hits, sharded_hits;
    for (const std::size_t num_shards : {2u, 4u, 7u}) {
      ShardedIndex sharded;
      ASSERT_TRUE(sharded.Build(&clustered, num_shards).ok());
      for (const std::size_t nprobe :
           {std::size_t{1}, clustered.default_nprobe(),
            clustered.num_clusters()}) {
        for (const auto& q : queries) {
          clustered.TopKInto(q.data(), k, nprobe, &single_scratch,
                             &single_hits);
          sharded.TopKInto(q.data(), k, nprobe, &sharded_scratch,
                           &sharded_hits);
          ExpectSameHits(single_hits, sharded_hits);
          sharded.TopKParallel(q.data(), k, nprobe, &pool, &sharded_scratch,
                               &sharded_hits);
          ExpectSameHits(single_hits, sharded_hits);
        }
      }
    }
  }
}

TEST(ShardedIndexTest, EdgeCaseKZeroAndOversized) {
  const std::size_t n = 80, d = 8;
  DenseIndex base;
  ASSERT_TRUE(
      base.Build(MixtureEmbeddings(n, d, 4, 0.2f, 31), Iota(n)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());
  ShardedIndex sharded;
  ASSERT_TRUE(sharded.Build(&clustered, 4).ok());
  ShardedIndexScratch scratch;
  std::vector<ScoredEntity> hits;
  float q[8] = {1, 0, 0, 0, 0, 0, 0, 0};
  sharded.TopKInto(q, 0, 0, &scratch, &hits);
  EXPECT_TRUE(hits.empty());
  sharded.TopKInto(q, 1000, clustered.num_clusters(), &scratch, &hits);
  ASSERT_EQ(hits.size(), n);
  std::set<kb::EntityId> ids;
  for (const auto& hit : hits) ids.insert(hit.id);
  EXPECT_EQ(ids.size(), n);
}

TEST(ShardedIndexTest, ConcurrentQueryHammer) {
  // 8 threads share one immutable sharded view and one pool; every result
  // must equal the precomputed single-index answer. Under TSan this is the
  // data-race check for the sharded probe path.
  const std::size_t n = 2000, d = 16, k = 12;
  DenseIndex base;
  ASSERT_TRUE(
      base.Build(MixtureEmbeddings(n, d, 8, 0.2f, 41), Iota(n)).ok());
  ClusteredIndexOptions options;
  options.use_pq = true;
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, options).ok());
  ShardedIndex sharded;
  ASSERT_TRUE(sharded.Build(&clustered, 4).ok());

  const std::size_t num_queries = 32;
  util::Rng qrng(42);
  tensor::Tensor queries(num_queries, d);
  for (float& v : queries.data()) v = qrng.NextFloat(-1, 1);
  std::vector<std::vector<ScoredEntity>> expected(num_queries);
  {
    ClusteredScratch scratch;
    for (std::size_t i = 0; i < num_queries; ++i) {
      clustered.TopKInto(queries.row_data(i), k, 0, &scratch, &expected[i]);
    }
  }

  util::ThreadPool shared_pool(4);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      ShardedIndexScratch scratch;
      std::vector<ScoredEntity> hits;
      for (int round = 0; round < 25; ++round) {
        const std::size_t i = (t * 25 + round) % num_queries;
        if (t % 2 == 0) {
          sharded.TopKInto(queries.row_data(i), k, 0, &scratch, &hits);
        } else {
          sharded.TopKParallel(queries.row_data(i), k, 0, &shared_pool,
                               &scratch, &hits);
        }
        if (hits.size() != expected[i].size()) {
          ++mismatches;
          continue;
        }
        for (std::size_t r = 0; r < hits.size(); ++r) {
          if (hits[r].id != expected[i][r].id ||
              hits[r].score != expected[i][r].score) {
            ++mismatches;
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace metablink::retrieval
