#include <gtest/gtest.h>

#include <algorithm>

#include "retrieval/dense_index.h"
#include "util/rng.h"

namespace metablink::retrieval {
namespace {

tensor::Tensor RandomEmbeddings(std::size_t n, std::size_t d,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor t(n, d);
  for (float& v : t.data()) v = rng.NextFloat(-1, 1);
  return t;
}

std::vector<kb::EntityId> Iota(std::size_t n) {
  std::vector<kb::EntityId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<kb::EntityId>(i);
  return ids;
}

TEST(DenseIndexTest, BuildValidatesInput) {
  DenseIndex index;
  EXPECT_FALSE(index.Build(tensor::Tensor(2, 3), Iota(5)).ok());
  EXPECT_FALSE(index.Build(tensor::Tensor(0, 0), {}).ok());
  EXPECT_TRUE(index.Build(RandomEmbeddings(5, 3, 1), Iota(5)).ok());
  EXPECT_TRUE(index.built());
  EXPECT_EQ(index.size(), 5u);
  EXPECT_EQ(index.dim(), 3u);
}

TEST(DenseIndexTest, TopKMatchesBruteForce) {
  const std::size_t n = 200, d = 8;
  tensor::Tensor emb = RandomEmbeddings(n, d, 2);
  DenseIndex index;
  ASSERT_TRUE(index.Build(emb, Iota(n)).ok());

  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    auto top = index.TopK(q.data(), 7);
    ASSERT_EQ(top.size(), 7u);
    // Scores descending.
    for (std::size_t i = 1; i < top.size(); ++i) {
      EXPECT_GE(top[i - 1].score, top[i].score);
    }
    // Best equals brute-force argmax.
    float best = -1e30f;
    kb::EntityId best_id = 0;
    for (std::size_t i = 0; i < n; ++i) {
      float s = tensor::Dot(q.data(), emb.row_data(i), d);
      if (s > best) {
        best = s;
        best_id = static_cast<kb::EntityId>(i);
      }
    }
    EXPECT_EQ(top[0].id, best_id);
    EXPECT_NEAR(top[0].score, best, 1e-5);
  }
}

TEST(DenseIndexTest, KLargerThanIndexClamps) {
  DenseIndex index;
  ASSERT_TRUE(index.Build(RandomEmbeddings(4, 3, 4), Iota(4)).ok());
  float q[3] = {1, 0, 0};
  EXPECT_EQ(index.TopK(q, 100).size(), 4u);
}

TEST(DenseIndexTest, DeterministicTieBreakById) {
  // Two identical rows: the smaller id must always come first.
  tensor::Tensor emb(3, 2);
  emb.at(0, 0) = 1.0f;
  emb.at(1, 0) = 1.0f;  // duplicate of row 0
  emb.at(2, 1) = 1.0f;
  DenseIndex index;
  ASSERT_TRUE(index.Build(emb, {10, 5, 7}).ok());
  float q[2] = {1, 0};
  auto top = index.TopK(q, 2);
  EXPECT_EQ(top[0].id, 5u);
  EXPECT_EQ(top[1].id, 10u);
}

TEST(DenseIndexTest, BatchTopKMatchesSingle) {
  const std::size_t n = 100, d = 6;
  tensor::Tensor emb = RandomEmbeddings(n, d, 5);
  DenseIndex index;
  ASSERT_TRUE(index.Build(emb, Iota(n)).ok());
  tensor::Tensor queries = RandomEmbeddings(9, d, 6);

  util::ThreadPool pool(3);
  auto batched = index.BatchTopK(queries, 5, &pool);
  auto serial = index.BatchTopK(queries, 5, nullptr);
  ASSERT_EQ(batched.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    ASSERT_EQ(batched[i].size(), serial[i].size());
    for (std::size_t k = 0; k < batched[i].size(); ++k) {
      EXPECT_EQ(batched[i][k].id, serial[i][k].id);
    }
    auto single = index.TopK(queries.row_data(i), 5);
    EXPECT_EQ(batched[i][0].id, single[0].id);
  }
}

}  // namespace
}  // namespace metablink::retrieval
