#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "retrieval/dense_index.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace metablink::retrieval {
namespace {

tensor::Tensor RandomEmbeddings(std::size_t n, std::size_t d,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor t(n, d);
  for (float& v : t.data()) v = rng.NextFloat(-1, 1);
  return t;
}

std::vector<kb::EntityId> Iota(std::size_t n) {
  std::vector<kb::EntityId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<kb::EntityId>(i);
  return ids;
}

TEST(DenseIndexTest, BuildValidatesInput) {
  DenseIndex index;
  EXPECT_FALSE(index.Build(tensor::Tensor(2, 3), Iota(5)).ok());
  EXPECT_FALSE(index.Build(tensor::Tensor(0, 0), {}).ok());
  EXPECT_TRUE(index.Build(RandomEmbeddings(5, 3, 1), Iota(5)).ok());
  EXPECT_TRUE(index.built());
  EXPECT_EQ(index.size(), 5u);
  EXPECT_EQ(index.dim(), 3u);
}

TEST(DenseIndexTest, TopKMatchesBruteForce) {
  const std::size_t n = 200, d = 8;
  tensor::Tensor emb = RandomEmbeddings(n, d, 2);
  DenseIndex index;
  ASSERT_TRUE(index.Build(emb, Iota(n)).ok());

  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    auto top = index.TopK(q.data(), 7);
    ASSERT_EQ(top.size(), 7u);
    // Scores descending.
    for (std::size_t i = 1; i < top.size(); ++i) {
      EXPECT_GE(top[i - 1].score, top[i].score);
    }
    // Best equals brute-force argmax.
    float best = -1e30f;
    kb::EntityId best_id = 0;
    for (std::size_t i = 0; i < n; ++i) {
      float s = tensor::Dot(q.data(), emb.row_data(i), d);
      if (s > best) {
        best = s;
        best_id = static_cast<kb::EntityId>(i);
      }
    }
    EXPECT_EQ(top[0].id, best_id);
    EXPECT_NEAR(top[0].score, best, 1e-5);
  }
}

TEST(DenseIndexTest, KLargerThanIndexClamps) {
  DenseIndex index;
  ASSERT_TRUE(index.Build(RandomEmbeddings(4, 3, 4), Iota(4)).ok());
  float q[3] = {1, 0, 0};
  EXPECT_EQ(index.TopK(q, 100).size(), 4u);
}

TEST(DenseIndexTest, EdgeCaseKZeroAndKOversizedAllPaths) {
  // k == 0 returns no hits without touching the data; k > size() clamps to
  // a full ranking. Pinned across every retrieval entry point.
  const std::size_t n = 15, d = 4;
  DenseIndex index;
  ASSERT_TRUE(index.Build(RandomEmbeddings(n, d, 41), Iota(n)).ok());
  index.Quantize();
  float q[4] = {1, 0, -1, 0};

  EXPECT_TRUE(index.TopK(q, 0).empty());
  TopKScratch scratch;
  std::vector<ScoredEntity> out{{3, 1.0f}};  // stale contents must be cleared
  index.TopKInto(q, 0, &scratch, &out);
  EXPECT_TRUE(out.empty());
  index.TopKQuantizedInto(q, 0, n, &scratch, &out);
  EXPECT_TRUE(out.empty());
  index.TopKInto(q, n + 50, &scratch, &out);
  EXPECT_EQ(out.size(), n);
  index.TopKQuantizedInto(q, n + 50, n, &scratch, &out);
  EXPECT_EQ(out.size(), n);

  tensor::Tensor queries = RandomEmbeddings(5, d, 42);
  auto batched = index.BatchTopK(queries, 0);
  ASSERT_EQ(batched.size(), 5u);
  for (const auto& hits : batched) EXPECT_TRUE(hits.empty());
  batched = index.BatchTopK(queries, n + 50);
  for (const auto& hits : batched) EXPECT_EQ(hits.size(), n);
}

TEST(DenseIndexTest, BatchTopKScratchSizedOncePerTileShape) {
  // The per-chunk tile and per-query buffers depend only on the tile-shape
  // constants, so a reused scratch must not regrow between calls — the
  // second batch reuses the first batch's allocations verbatim.
  const std::size_t n = 1500, d = 24;
  DenseIndex index;
  ASSERT_TRUE(index.Build(RandomEmbeddings(n, d, 43), Iota(n)).ok());
  tensor::Tensor queries = RandomEmbeddings(40, d, 44);

  BatchTopKScratch scratch;
  std::vector<std::vector<ScoredEntity>> out;
  index.BatchTopKInto(queries, 8, nullptr, &scratch, &out);
  ASSERT_FALSE(scratch.chunks.empty());
  const float* tile_data = scratch.chunks[0].tile.data();
  const std::size_t tile_cap = scratch.chunks[0].tile.capacity();
  const std::size_t per_query = scratch.chunks[0].per_query.size();

  index.BatchTopKInto(queries, 8, nullptr, &scratch, &out);
  EXPECT_EQ(scratch.chunks[0].tile.data(), tile_data);
  EXPECT_EQ(scratch.chunks[0].tile.capacity(), tile_cap);
  EXPECT_EQ(scratch.chunks[0].per_query.size(), per_query);

  // Results through the reused scratch still match the single-query path.
  TopKScratch single;
  std::vector<ScoredEntity> expected;
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    index.TopKInto(queries.row_data(i), 8, &single, &expected);
    ASSERT_EQ(out[i].size(), expected.size());
    for (std::size_t r = 0; r < expected.size(); ++r) {
      EXPECT_EQ(out[i][r].id, expected[r].id);
      EXPECT_EQ(out[i][r].score, expected[r].score);
    }
  }
}

TEST(DenseIndexTest, DeterministicTieBreakById) {
  // Two identical rows: the smaller id must always come first.
  tensor::Tensor emb(3, 2);
  emb.at(0, 0) = 1.0f;
  emb.at(1, 0) = 1.0f;  // duplicate of row 0
  emb.at(2, 1) = 1.0f;
  DenseIndex index;
  ASSERT_TRUE(index.Build(emb, {10, 5, 7}).ok());
  float q[2] = {1, 0};
  auto top = index.TopK(q, 2);
  EXPECT_EQ(top[0].id, 5u);
  EXPECT_EQ(top[1].id, 10u);
}

TEST(DenseIndexTest, BatchTopKMatchesSingle) {
  const std::size_t n = 100, d = 6;
  tensor::Tensor emb = RandomEmbeddings(n, d, 5);
  DenseIndex index;
  ASSERT_TRUE(index.Build(emb, Iota(n)).ok());
  tensor::Tensor queries = RandomEmbeddings(9, d, 6);

  util::ThreadPool pool(3);
  auto batched = index.BatchTopK(queries, 5, &pool);
  auto serial = index.BatchTopK(queries, 5, nullptr);
  ASSERT_EQ(batched.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    ASSERT_EQ(batched[i].size(), serial[i].size());
    for (std::size_t k = 0; k < batched[i].size(); ++k) {
      EXPECT_EQ(batched[i][k].id, serial[i][k].id);
    }
    auto single = index.TopK(queries.row_data(i), 5);
    EXPECT_EQ(batched[i][0].id, single[0].id);
  }
}

TEST(DenseIndexTest, QuantizedFullPoolMatchesExact) {
  // With pool_size == size(), every entity survives the int8 scan, the
  // final top-k is selected from true fp32 scores, and the result must be
  // identical (ids AND scores) to the exact path.
  const std::size_t n = 500, d = 16;
  DenseIndex index;
  ASSERT_TRUE(index.Build(RandomEmbeddings(n, d, 11), Iota(n)).ok());
  EXPECT_FALSE(index.quantized());
  index.Quantize();
  ASSERT_TRUE(index.quantized());

  util::Rng rng(12);
  TopKScratch scratch;
  std::vector<ScoredEntity> exact, quant;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    index.TopKInto(q.data(), 10, &scratch, &exact);
    index.TopKQuantizedInto(q.data(), 10, n, &scratch, &quant);
    ASSERT_EQ(exact.size(), quant.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(exact[i].id, quant[i].id);
      EXPECT_EQ(exact[i].score, quant[i].score);  // bit-identical fp32
    }
  }
}

TEST(DenseIndexTest, QuantizedRecallAt64MatchesExact) {
  // The serving configuration: k=64 out of a 4x-larger pool. The int8
  // scan only has to land the true top-64 inside the top-256 pool, which
  // symmetric per-row int8 achieves on random data; R@64 must not move.
  const std::size_t n = 2000, d = 32;
  DenseIndex index;
  ASSERT_TRUE(index.Build(RandomEmbeddings(n, d, 13), Iota(n)).ok());
  index.Quantize();

  util::Rng rng(14);
  TopKScratch scratch;
  std::vector<ScoredEntity> exact, quant;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    index.TopKInto(q.data(), 64, &scratch, &exact);
    index.TopKQuantizedInto(q.data(), 64, 256, &scratch, &quant);
    std::set<kb::EntityId> exact_ids, quant_ids;
    for (const auto& e : exact) exact_ids.insert(e.id);
    for (const auto& e : quant) quant_ids.insert(e.id);
    EXPECT_EQ(exact_ids, quant_ids);
  }
}

TEST(DenseIndexTest, SmallIndexQuantizedDispatchIsExact) {
  // Below kQuantizedDispatchMinRows the int8 scan is slower than the exact
  // fp32 scan (the 4k-entity bench point regressed 0.13 -> 0.19 ms/query),
  // so TopKQuantizedInto dispatches straight to the exact kernel. The
  // observable contract: ids, scores, and order are bit-identical to
  // TopKInto, even with a pool far too small for the approximate scan to
  // guarantee that.
  static_assert(DenseIndex::kQuantizedDispatchMinRows == 65536,
                "dispatch crossover moved; re-run bench_retrieval before "
                "changing this test");
  const std::size_t n = 3000, d = 24, k = 16;
  DenseIndex index;
  ASSERT_TRUE(index.Build(RandomEmbeddings(n, d, 17), Iota(n)).ok());
  index.Quantize();
  ASSERT_TRUE(index.quantized());

  util::Rng rng(18);
  TopKScratch scratch;
  std::vector<ScoredEntity> exact, dispatched;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    index.TopKInto(q.data(), k, &scratch, &exact);
    index.TopKQuantizedInto(q.data(), k, /*pool_size=*/k, &scratch,
                            &dispatched);
    ASSERT_EQ(exact.size(), dispatched.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(exact[i].id, dispatched[i].id);
      EXPECT_EQ(exact[i].score, dispatched[i].score);
    }
  }
}

TEST(DenseIndexTest, QuantizeHandlesZeroRows) {
  tensor::Tensor emb(3, 4);
  emb.at(1, 2) = 0.5f;  // rows 0 and 2 stay all-zero
  DenseIndex index;
  ASSERT_TRUE(index.Build(emb, Iota(3)).ok());
  index.Quantize();
  float q[4] = {0, 0, 1, 0};
  TopKScratch scratch;
  std::vector<ScoredEntity> out;
  index.TopKQuantizedInto(q, 3, 3, &scratch, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_FLOAT_EQ(out[0].score, 0.5f);
}

TEST(DenseIndexTest, SaveLoadRoundTrip) {
  const std::size_t n = 64, d = 8;
  DenseIndex index;
  ASSERT_TRUE(index.Build(RandomEmbeddings(n, d, 21), Iota(n)).ok());
  index.Quantize();
  const std::string path = "/tmp/metablink_dense_index_test.bin";
  ASSERT_TRUE(index.SaveToFile(path).ok());

  DenseIndex restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  std::remove(path.c_str());
  EXPECT_EQ(restored.size(), n);
  EXPECT_EQ(restored.dim(), d);
  EXPECT_TRUE(restored.quantized());

  util::Rng rng(22);
  TopKScratch scratch;
  std::vector<ScoredEntity> a, b;
  std::vector<float> q(d);
  for (float& v : q) v = rng.NextFloat(-1, 1);
  index.TopKInto(q.data(), 9, &scratch, &a);
  restored.TopKInto(q.data(), 9, &scratch, &b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].score, b[i].score);
  }
  // The int8 form round-trips too.
  index.TopKQuantizedInto(q.data(), 9, 32, &scratch, &a);
  restored.TopKQuantizedInto(q.data(), 9, 32, &scratch, &b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
}

TEST(DenseIndexTest, SaveLoadWithoutQuantizedForm) {
  DenseIndex index;
  ASSERT_TRUE(index.Build(RandomEmbeddings(10, 4, 23), Iota(10)).ok());
  util::BinaryWriter writer;
  index.Save(&writer);
  util::BinaryReader reader(writer.TakeBuffer());
  DenseIndex restored;
  ASSERT_TRUE(restored.Load(&reader).ok());
  EXPECT_FALSE(restored.quantized());
  EXPECT_EQ(restored.size(), 10u);
}

TEST(DenseIndexTest, LoadRejectsGarbage) {
  util::BinaryReader reader(std::vector<std::uint8_t>{1, 2, 3, 4});
  DenseIndex index;
  EXPECT_FALSE(index.Load(&reader).ok());
}

}  // namespace
}  // namespace metablink::retrieval
