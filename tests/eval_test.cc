#include <gtest/gtest.h>

#include "data/generator.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "train/bi_trainer.h"

namespace metablink::eval {
namespace {

// ---- metrics ---------------------------------------------------------------

TEST(MetricsTest, RecallAtK) {
  std::vector<std::vector<retrieval::ScoredEntity>> lists = {
      {{1, 0.9f}, {2, 0.8f}},
      {{3, 0.9f}, {4, 0.8f}},
      {{5, 0.9f}},
  };
  std::vector<kb::EntityId> gold = {2, 9, 5};
  EXPECT_NEAR(RecallAtK(lists, gold), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(RecallAtK({}, {}), 0.0);
  EXPECT_EQ(RecallAtK(lists, {1}), 0.0);  // misaligned
}

TEST(MetricsTest, MakeEvalResultComposes) {
  EvalResult r = MakeEvalResult(100, 80, 40);
  EXPECT_DOUBLE_EQ(r.recall_at_k, 0.8);
  EXPECT_DOUBLE_EQ(r.normalized_acc, 0.5);
  EXPECT_DOUBLE_EQ(r.unnormalized_acc, 0.4);
  // The paper identity: U.Acc = recall * N.Acc.
  EXPECT_NEAR(r.unnormalized_acc, r.recall_at_k * r.normalized_acc, 1e-12);
}

TEST(MetricsTest, MakeEvalResultZeroSafe) {
  EvalResult r = MakeEvalResult(0, 0, 0);
  EXPECT_EQ(r.recall_at_k, 0.0);
  EXPECT_EQ(r.normalized_acc, 0.0);
  EXPECT_EQ(r.unnormalized_acc, 0.0);
}

// ---- name matching ---------------------------------------------------------

TEST(NameMatchingTest, CraftedCases) {
  kb::KnowledgeBase kb;
  kb::Entity e;
  e.domain = "d";
  e.title = "red dragon";
  e.description = "x";
  kb::EntityId dragon = *kb.AddEntity(e);
  e.title = "blue bird";
  kb::EntityId bird = *kb.AddEntity(e);
  (void)bird;

  std::vector<data::LinkingExample> examples(3);
  examples[0].mention = "red dragon";  // exact hit -> correct
  examples[0].entity_id = dragon;
  examples[1].mention = "the scaled one";  // alias, no match -> wrong
  examples[1].entity_id = dragon;
  examples[2].mention = "red";  // substring, no exact match -> wrong
  examples[2].entity_id = dragon;
  for (auto& ex : examples) ex.domain = "d";

  util::Rng rng(1);
  EXPECT_NEAR(NameMatchingAccuracy(kb, "d", examples, &rng), 1.0 / 3.0,
              1e-12);
  EXPECT_EQ(NameMatchingAccuracy(kb, "d", {}, &rng), 0.0);
}

TEST(NameMatchingTest, AmbiguousBaseIsChance) {
  kb::KnowledgeBase kb;
  kb::Entity e;
  e.domain = "d";
  e.description = "x";
  e.title = "sora (satellite)";
  kb::EntityId gold = *kb.AddEntity(e);
  e.title = "sora (program)";
  kb.AddEntity(e);

  std::vector<data::LinkingExample> examples(200);
  for (auto& ex : examples) {
    ex.mention = "sora";
    ex.entity_id = gold;
    ex.domain = "d";
  }
  util::Rng rng(2);
  double acc = NameMatchingAccuracy(kb, "d", examples, &rng);
  EXPECT_NEAR(acc, 0.5, 0.1);  // coin flip between the two siblings
}

// ---- two-stage evaluator ---------------------------------------------------

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorOptions opts;
    opts.seed = 31;
    opts.shared_vocab_size = 300;
    opts.domain_vocab_size = 150;
    data::ZeshelLikeGenerator gen(opts);
    std::vector<data::DomainSpec> specs(1);
    specs[0].name = "d";
    specs[0].num_entities = 50;
    specs[0].num_examples = 160;
    corpus_ = std::make_unique<data::Corpus>(std::move(*gen.Generate(specs)));
  }

  std::unique_ptr<data::Corpus> corpus_;
};

TEST_F(EvaluatorTest, TrainedBiEncoderBeatsUntrained) {
  model::BiEncoderConfig cfg;
  cfg.features.hasher.num_buckets = 2048;
  cfg.dim = 16;
  util::Rng rng(1);
  model::BiEncoder untrained(cfg, &rng);
  util::Rng rng2(1);
  model::BiEncoder trained(cfg, &rng2);

  auto split = data::MakeFewShotSplit(corpus_->ExamplesIn("d"), 120, 0, 5);
  train::TrainOptions topt;
  topt.epochs = 5;
  train::BiEncoderTrainer trainer(topt);
  ASSERT_TRUE(trainer.Train(&trained, corpus_->kb, split.train).ok());

  EvaluatorOptions eopt;
  eopt.k = 8;  // small k so recall is informative on 50 entities
  eopt.num_threads = 2;
  TwoStageEvaluator evaluator(eopt);
  auto before =
      evaluator.Evaluate(untrained, nullptr, corpus_->kb, "d", split.test);
  auto after =
      evaluator.Evaluate(trained, nullptr, corpus_->kb, "d", split.test);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->recall_at_k, before->recall_at_k);
  EXPECT_GT(after->unnormalized_acc, before->unnormalized_acc);
}

TEST_F(EvaluatorTest, ResultInvariantsHold) {
  model::BiEncoderConfig cfg;
  cfg.features.hasher.num_buckets = 1024;
  cfg.dim = 8;
  util::Rng rng(1);
  model::BiEncoder model(cfg, &rng);
  TwoStageEvaluator evaluator(EvaluatorOptions{.k = 16, .num_threads = 2});
  auto split = data::MakeFewShotSplit(corpus_->ExamplesIn("d"), 0, 0, 5);
  auto r = evaluator.Evaluate(model, nullptr, corpus_->kb, "d", split.test);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_examples, split.test.size());
  EXPECT_LE(r->num_top1, r->num_in_candidates);
  EXPECT_LE(r->num_in_candidates, r->num_examples);
  EXPECT_NEAR(r->unnormalized_acc, r->recall_at_k * r->normalized_acc, 1e-9);
}

TEST_F(EvaluatorTest, ErrorsOnBadInputs) {
  model::BiEncoderConfig cfg;
  cfg.features.hasher.num_buckets = 256;
  cfg.dim = 8;
  util::Rng rng(1);
  model::BiEncoder model(cfg, &rng);
  TwoStageEvaluator evaluator;
  EXPECT_FALSE(evaluator.Evaluate(model, nullptr, corpus_->kb, "d", {}).ok());
  std::vector<data::LinkingExample> one(1);
  EXPECT_FALSE(
      evaluator.Evaluate(model, nullptr, corpus_->kb, "nope", one).ok());
}

TEST_F(EvaluatorTest, RetrieveCandidatesShapes) {
  model::BiEncoderConfig cfg;
  cfg.features.hasher.num_buckets = 256;
  cfg.dim = 8;
  util::Rng rng(1);
  model::BiEncoder model(cfg, &rng);
  TwoStageEvaluator evaluator(EvaluatorOptions{.k = 10, .num_threads = 2});
  auto split = data::MakeFewShotSplit(corpus_->ExamplesIn("d"), 20, 0, 5);
  auto lists =
      evaluator.RetrieveCandidates(model, corpus_->kb, "d", split.train);
  ASSERT_TRUE(lists.ok());
  ASSERT_EQ(lists->size(), 20u);
  for (const auto& l : *lists) {
    EXPECT_EQ(l.size(), 10u);
    for (const auto& c : l) {
      EXPECT_EQ(corpus_->kb.entity(c.id).domain, "d");
    }
  }
}

}  // namespace
}  // namespace metablink::eval
