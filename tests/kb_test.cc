#include <gtest/gtest.h>

#include "kb/knowledge_base.h"
#include "kb/title_index.h"
#include "util/serialize.h"

namespace metablink::kb {
namespace {

Entity MakeEntity(const std::string& title, const std::string& desc,
                  const std::string& domain) {
  Entity e;
  e.title = title;
  e.description = desc;
  e.domain = domain;
  return e;
}

class KnowledgeBaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = *kb_.AddEntity(MakeEntity("Jack Atlas", "a duelist", "yugioh"));
    b_ = *kb_.AddEntity(MakeEntity("SORA (satellite)",
                                   "SORA is the satellite of misgarth",
                                   "yugioh"));
    c_ = *kb_.AddEntity(MakeEntity("SORA (program)", "a program", "yugioh"));
    d_ = *kb_.AddEntity(MakeEntity("Brick", "a brick", "lego"));
  }

  KnowledgeBase kb_;
  EntityId a_, b_, c_, d_;
};

TEST_F(KnowledgeBaseTest, IdsAreDense) {
  EXPECT_EQ(a_, 0u);
  EXPECT_EQ(d_, 3u);
  EXPECT_EQ(kb_.num_entities(), 4u);
}

TEST_F(KnowledgeBaseTest, GetEntity) {
  auto e = kb_.GetEntity(a_);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->title, "Jack Atlas");
  EXPECT_FALSE(kb_.GetEntity(99).ok());
}

TEST_F(KnowledgeBaseTest, DuplicateTitleSameDomainRejected) {
  auto r = kb_.AddEntity(MakeEntity("Jack Atlas", "again", "yugioh"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kAlreadyExists);
}

TEST_F(KnowledgeBaseTest, SameTitleDifferentDomainAllowed) {
  auto r = kb_.AddEntity(MakeEntity("Jack Atlas", "lego jack", "lego"));
  EXPECT_TRUE(r.ok());
}

TEST_F(KnowledgeBaseTest, EmptyTitleRejected) {
  EXPECT_FALSE(kb_.AddEntity(MakeEntity("", "x", "lego")).ok());
}

TEST_F(KnowledgeBaseTest, FindByTitle) {
  auto r = kb_.FindByTitle("yugioh", "Jack Atlas");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, a_);
  EXPECT_FALSE(kb_.FindByTitle("lego", "Jack Atlas").ok());
}

TEST_F(KnowledgeBaseTest, DomainPartition) {
  EXPECT_EQ(kb_.EntitiesInDomain("yugioh").size(), 3u);
  EXPECT_EQ(kb_.EntitiesInDomain("lego").size(), 1u);
  EXPECT_TRUE(kb_.EntitiesInDomain("absent").empty());
  auto names = kb_.DomainNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "yugioh");
}

TEST_F(KnowledgeBaseTest, RelationsInterned) {
  RelationId r1 = kb_.AddRelation("rival_of");
  RelationId r2 = kb_.AddRelation("rival_of");
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(kb_.RelationName(r1), "rival_of");
  EXPECT_EQ(kb_.RelationName(42), "");
  EXPECT_EQ(kb_.num_relations(), 1u);
}

TEST_F(KnowledgeBaseTest, TriplesValidated) {
  RelationId r = kb_.AddRelation("rival_of");
  ASSERT_TRUE(kb_.AddTriple(a_, r, b_).ok());
  EXPECT_FALSE(kb_.AddTriple(a_, r, 99).ok());
  EXPECT_FALSE(kb_.AddTriple(a_, 7, b_).ok());
  auto from_a = kb_.TriplesFrom(a_);
  ASSERT_EQ(from_a.size(), 1u);
  EXPECT_EQ(from_a[0].tail, b_);
  EXPECT_TRUE(kb_.TriplesFrom(d_).empty());
}

TEST_F(KnowledgeBaseTest, SerializationRoundTrip) {
  RelationId r = kb_.AddRelation("rel");
  ASSERT_TRUE(kb_.AddTriple(a_, r, d_).ok());
  util::BinaryWriter w;
  kb_.Save(&w);
  util::BinaryReader reader(w.buffer());
  auto loaded = KnowledgeBase::Load(&reader);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_entities(), kb_.num_entities());
  EXPECT_EQ(loaded->entity(b_).title, "SORA (satellite)");
  EXPECT_EQ(loaded->triples().size(), 1u);
  EXPECT_EQ(loaded->RelationName(0), "rel");
  EXPECT_EQ(loaded->EntitiesInDomain("yugioh").size(), 3u);
}

TEST_F(KnowledgeBaseTest, LoadRejectsTruncated) {
  util::BinaryWriter w;
  kb_.Save(&w);
  auto buf = w.buffer();
  buf.resize(buf.size() / 2);
  util::BinaryReader reader(std::move(buf));
  EXPECT_FALSE(KnowledgeBase::Load(&reader).ok());
}

// ---- TitleIndex ------------------------------------------------------------

TEST_F(KnowledgeBaseTest, TitleIndexExactMatch) {
  TitleIndex index(kb_, "yugioh");
  auto hits = index.LookupExact("jack atlas");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], a_);
  EXPECT_TRUE(index.LookupExact("Brick").empty());  // other domain
  EXPECT_EQ(index.num_indexed(), 3u);
}

TEST_F(KnowledgeBaseTest, TitleIndexNormalizes) {
  TitleIndex index(kb_, "yugioh");
  EXPECT_EQ(index.LookupExact("JACK   ATLAS!").size(), 1u);
}

TEST_F(KnowledgeBaseTest, TitleIndexBaseMatchesDisambiguated) {
  TitleIndex index(kb_, "yugioh");
  auto hits = index.LookupBase("SORA");
  ASSERT_EQ(hits.size(), 2u);  // both SORA (...) siblings
  auto all = index.LookupAll("SORA");
  EXPECT_EQ(all.size(), 2u);  // no exact title "SORA"
}

TEST_F(KnowledgeBaseTest, TitleIndexAcrossAllDomains) {
  TitleIndex index(kb_);
  EXPECT_EQ(index.num_indexed(), 4u);
  EXPECT_EQ(index.LookupExact("brick").size(), 1u);
}

}  // namespace
}  // namespace metablink::kb
