#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "analysis/graph_lint.h"
#include "analysis/write_set.h"
#include "data/generator.h"
#include "model/bi_encoder.h"
#include "tensor/graph.h"
#include "tensor/parameter.h"
#include "train/meta_trainer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace metablink::analysis {
namespace {

using tensor::OpKind;
using tensor::TapeOp;

// Forged-tape helper. GraphLint tests seed defects directly in TapeOp
// vectors because the Graph op builders METABLINK_CHECK-abort on the very
// mistakes the linter exists to describe.
TapeOp Op(OpKind kind, std::int32_t id, std::size_t rows, std::size_t cols,
          std::vector<std::int32_t> inputs = {},
          const tensor::Parameter* param = nullptr) {
  TapeOp op;
  op.kind = kind;
  op.id = id;
  op.rows = rows;
  op.cols = cols;
  op.inputs = std::move(inputs);
  op.param = param;
  return op;
}

// A minimal well-formed tape: loss = Mean(MatMul(input, param)).
std::vector<TapeOp> CleanTape(const tensor::Parameter* w) {
  return {
      Op(OpKind::kInput, 0, 4, 8),
      Op(OpKind::kParam, 1, 8, 2, {}, w),
      Op(OpKind::kMatMul, 2, 4, 2, {0, 1}),
      Op(OpKind::kMean, 3, 1, 1, {2}),
  };
}

// ---- GraphLint: seeded-defect fixtures, one per lint class -----------------

TEST(GraphLintTest, CleanTapeHasNoErrorsOrWarnings) {
  tensor::Parameter w("w", 8, 2);
  LintReport report = LintTape(CleanTape(&w), 3);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.warnings, 0u);
  EXPECT_EQ(report.num_nodes, 4u);
  // The accounting info finding is always present.
  EXPECT_TRUE(report.Has(LintClass::kMemoryBudget));
  EXPECT_EQ(report.tape_bytes, (4 * 8 + 8 * 2 + 4 * 2 + 1) * sizeof(float));
}

TEST(GraphLintTest, FlagsForwardAndSelfReferences) {
  tensor::Parameter w("w", 8, 2);
  std::vector<TapeOp> tape = CleanTape(&w);
  tape[2].inputs = {0, 3};  // forward reference into the future
  LintReport report = LintTape(tape, 3);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(LintClass::kTapeStructure));

  tape = CleanTape(&w);
  tape[2].inputs = {0, 2};  // self reference
  report = LintTape(tape, 3);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(LintClass::kTapeStructure));
}

TEST(GraphLintTest, FlagsOutOfRangeInputAndWrongArity) {
  tensor::Parameter w("w", 8, 2);
  std::vector<TapeOp> tape = CleanTape(&w);
  tape[2].inputs = {0, 99};  // id outside the tape
  EXPECT_TRUE(LintTape(tape, 3).Has(LintClass::kTapeStructure));

  tape = CleanTape(&w);
  tape[2].inputs = {0};  // MatMul with one input
  EXPECT_TRUE(LintTape(tape, 3).Has(LintClass::kTapeStructure));
}

TEST(GraphLintTest, FlagsBadRoot) {
  tensor::Parameter w("w", 8, 2);
  LintReport report = LintTape(CleanTape(&w), 42);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(LintClass::kTapeStructure));
  EXPECT_FALSE(LintTape(CleanTape(&w), -1).ok());
}

TEST(GraphLintTest, FlagsMatMulInnerDimensionMismatch) {
  tensor::Parameter w("w", 5, 2);  // input is [4,8]; 8 != 5
  std::vector<TapeOp> tape = CleanTape(&w);
  tape[1].rows = 5;
  LintReport report = LintTape(tape, 3);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.Has(LintClass::kShapeMismatch));
  for (const LintFinding& f : report.findings) {
    if (f.lint_class != LintClass::kShapeMismatch) continue;
    EXPECT_EQ(f.node, 2);
    EXPECT_EQ(f.op, "MatMul");
    EXPECT_EQ(f.severity, Severity::kError);
  }
}

TEST(GraphLintTest, FlagsWrongRecordedOutputShape) {
  tensor::Parameter w("w", 8, 2);
  std::vector<TapeOp> tape = CleanTape(&w);
  tape[2].cols = 7;  // MatMul output should be [4,2]
  EXPECT_TRUE(LintTape(tape, 3).Has(LintClass::kShapeMismatch));
}

TEST(GraphLintTest, FlagsDetachedNodeAsDead) {
  tensor::Parameter w("w", 8, 2);
  std::vector<TapeOp> tape = CleanTape(&w);
  // A computed-but-unused branch: Tanh of the input, never consumed.
  tape.push_back(Op(OpKind::kTanh, 4, 4, 8, {0}));
  LintReport report = LintTape(tape, 3);
  EXPECT_TRUE(report.ok());  // dead code is a warning, not an error
  ASSERT_TRUE(report.Has(LintClass::kDeadNode));
  for (const LintFinding& f : report.findings) {
    if (f.lint_class != LintClass::kDeadNode) continue;
    EXPECT_EQ(f.node, 4);
    EXPECT_EQ(f.severity, Severity::kWarning);
  }
  EXPECT_FALSE(report.Has(LintClass::kFrozenParameter));
}

TEST(GraphLintTest, FlagsUnreachedParameterAsFrozen) {
  tensor::Parameter w("w", 8, 2);
  tensor::Parameter frozen("frozen_bias", 1, 2);
  std::vector<TapeOp> tape = CleanTape(&w);
  // The classic bug: the parameter is on the tape but nothing consumes it,
  // so it never receives gradient and silently stops training.
  tape.push_back(Op(OpKind::kParam, 4, 1, 2, {}, &frozen));
  LintReport report = LintTape(tape, 3);
  ASSERT_TRUE(report.Has(LintClass::kFrozenParameter));
  bool named = false;
  for (const LintFinding& f : report.findings) {
    if (f.lint_class != LintClass::kFrozenParameter) continue;
    EXPECT_EQ(f.node, 4);
    named = f.message.find("frozen_bias") != std::string::npos;
  }
  EXPECT_TRUE(named) << "finding should name the frozen parameter";
}

TEST(GraphLintTest, MemoryBudgetWarnsWhenExceeded) {
  tensor::Parameter w("w", 8, 2);
  GraphLintOptions options;
  options.memory_budget_bytes = 1;  // everything exceeds one byte
  LintReport report = LintTape(CleanTape(&w), 3, options);
  EXPECT_TRUE(report.ok());  // budget overrun is a warning
  EXPECT_EQ(report.warnings, 1u);
  EXPECT_TRUE(report.Has(LintClass::kMemoryBudget));

  options.memory_budget_bytes = 1u << 20;
  report = LintTape(CleanTape(&w), 3, options);
  EXPECT_EQ(report.warnings, 0u);
}

TEST(GraphLintTest, NonFiniteScanFlagsNaNValues) {
  // This class needs real node values, so it uses a live Graph.
  tensor::Tensor bad(2, 2);
  bad.at(1, 1) = std::numeric_limits<float>::quiet_NaN();
  tensor::Graph g;
  tensor::Var x = g.Input(std::move(bad));
  tensor::Var loss = g.Mean(g.Tanh(x));

  GraphLintOptions options;
  options.scan_non_finite = true;
  LintReport report = LintGraph(g, loss, options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(LintClass::kNonFinite));

  // Without the opt-in scan the same graph lints clean.
  EXPECT_TRUE(LintGraph(g, loss).ok());
}

TEST(GraphLintTest, SummaryAndToStringNameTheDefect) {
  tensor::Parameter w("w", 5, 2);
  std::vector<TapeOp> tape = CleanTape(&w);
  tape[1].rows = 5;
  LintReport report = LintTape(tape, 3);
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("error"), std::string::npos);
  EXPECT_NE(summary.find("MatMul"), std::string::npos);
  EXPECT_NE(summary.find("shape-mismatch"), std::string::npos);
}

// ---- DebugTape: the structural snapshot matches the built graph ------------

TEST(DebugTapeTest, RecordsKindsShapesEdgesAndParams) {
  tensor::ParameterStore store;
  tensor::Parameter* w = store.Create("w", 8, 4);
  tensor::Graph g;
  tensor::Var x = g.Input(tensor::Tensor(3, 8));
  tensor::Var wp = g.Param(w);
  tensor::Var h = g.MatMul(x, wp);
  tensor::Var loss = g.Mean(g.Tanh(h));

  const std::vector<TapeOp> tape = g.DebugTape();
  ASSERT_EQ(tape.size(), g.num_nodes());
  for (std::size_t i = 0; i < tape.size(); ++i) {
    EXPECT_EQ(tape[i].id, static_cast<std::int32_t>(i));
    ASSERT_NE(tape[i].value, nullptr);
    EXPECT_EQ(tape[i].rows, tape[i].value->rows());
    EXPECT_EQ(tape[i].cols, tape[i].value->cols());
  }
  EXPECT_EQ(tape[static_cast<std::size_t>(x.id)].kind, OpKind::kInput);
  EXPECT_EQ(tape[static_cast<std::size_t>(wp.id)].kind, OpKind::kParam);
  EXPECT_EQ(tape[static_cast<std::size_t>(wp.id)].param, w);
  EXPECT_EQ(tape[static_cast<std::size_t>(h.id)].kind, OpKind::kMatMul);
  EXPECT_EQ(tape[static_cast<std::size_t>(h.id)].inputs,
            (std::vector<std::int32_t>{x.id, wp.id}));
  EXPECT_EQ(tape[static_cast<std::size_t>(loss.id)].kind, OpKind::kMean);

  // And the built graph lints clean.
  EXPECT_TRUE(LintGraph(g, loss).ok());
}

// ---- Real training graphs lint clean ---------------------------------------

class RealGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorOptions opts;
    opts.seed = 77;
    opts.shared_vocab_size = 300;
    opts.domain_vocab_size = 150;
    data::ZeshelLikeGenerator gen(opts);
    std::vector<data::DomainSpec> specs(1);
    specs[0].name = "d";
    specs[0].num_entities = 60;
    specs[0].num_examples = 64;
    specs[0].num_documents = 30;
    corpus_ = std::make_unique<data::Corpus>(std::move(*gen.Generate(specs)));
  }

  model::BiEncoderConfig SmallConfig() const {
    model::BiEncoderConfig cfg;
    cfg.features.hasher.num_buckets = 1024;
    cfg.dim = 16;
    return cfg;
  }

  std::unique_ptr<data::Corpus> corpus_;
};

TEST_F(RealGraphTest, BiEncoderInBatchLossGraphLintsClean) {
  util::Rng rng(1);
  model::BiEncoder model(SmallConfig(), &rng);
  const auto& examples = corpus_->ExamplesIn("d");
  std::vector<data::LinkingExample> batch(examples.begin(),
                                          examples.begin() + 8);
  tensor::Graph g;
  tensor::Var losses = model.InBatchLoss(&g, batch, corpus_->kb);
  LintReport report = LintGraph(g, losses);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.errors, 0u);
  EXPECT_FALSE(report.Has(LintClass::kFrozenParameter)) << report.Summary();
}

// ---- WriteSetChecker: protocol-level seeded defects ------------------------

TEST(WriteSetCheckerTest, AcceptsDisjointCoveringPartition) {
  WriteSetChecker checker;
  int buffer = 0;
  checker.OnRegionBegin(&buffer, 10, /*expect_cover=*/true, "Clean");
  checker.OnTaskWrite(&buffer, 0, 4);
  checker.OnTaskWrite(&buffer, 7, 10);  // arrival order is not row order
  checker.OnTaskWrite(&buffer, 4, 7);
  checker.OnRegionEnd(&buffer);
  EXPECT_TRUE(checker.ok()) << checker.Summary();
  EXPECT_EQ(checker.regions_checked(), 1u);
}

TEST(WriteSetCheckerTest, DetectsDeliberatelyOverlappingPartition) {
  WriteSetChecker checker;
  int buffer = 0;
  checker.OnRegionBegin(&buffer, 10, /*expect_cover=*/true, "Overlap");
  checker.OnTaskWrite(&buffer, 0, 6);
  checker.OnTaskWrite(&buffer, 4, 10);  // rows [4,6) written twice: a race
  checker.OnRegionEnd(&buffer);
  EXPECT_FALSE(checker.ok());
  ASSERT_EQ(checker.findings().size(), 1u);
  EXPECT_NE(checker.findings()[0].message.find("overlap"),
            std::string::npos);
  EXPECT_EQ(checker.findings()[0].tag, "Overlap");
}

TEST(WriteSetCheckerTest, DetectsCoverageGap) {
  WriteSetChecker checker;
  int buffer = 0;
  checker.OnRegionBegin(&buffer, 10, /*expect_cover=*/true, "Gap");
  checker.OnTaskWrite(&buffer, 0, 4);
  checker.OnTaskWrite(&buffer, 6, 10);  // rows [4,6) never written
  checker.OnRegionEnd(&buffer);
  EXPECT_FALSE(checker.ok());
  ASSERT_EQ(checker.findings().size(), 1u);
  EXPECT_NE(checker.findings()[0].message.find("cover"), std::string::npos);
}

TEST(WriteSetCheckerTest, GapIsFineWhenCoverageNotExpected) {
  WriteSetChecker checker;
  int buffer = 0;
  checker.OnRegionBegin(&buffer, 10, /*expect_cover=*/false, "Scatter");
  checker.OnTaskWrite(&buffer, 2, 3);
  checker.OnTaskWrite(&buffer, 8, 9);
  checker.OnRegionEnd(&buffer);
  EXPECT_TRUE(checker.ok()) << checker.Summary();
}

TEST(WriteSetCheckerTest, DetectsOutOfBoundsRange) {
  WriteSetChecker checker;
  int buffer = 0;
  checker.OnRegionBegin(&buffer, 10, /*expect_cover=*/false, "Bounds");
  checker.OnTaskWrite(&buffer, 8, 12);  // escapes the 10-row buffer
  checker.OnRegionEnd(&buffer);
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.findings()[0].message.find("escapes"),
            std::string::npos);
}

TEST(WriteSetCheckerTest, DetectsWriteWithNoOpenRegion) {
  WriteSetChecker checker;
  int buffer = 0;
  checker.OnTaskWrite(&buffer, 0, 1);
  EXPECT_FALSE(checker.ok());
  EXPECT_EQ(checker.regions_checked(), 0u);
}

// ---- WriteSetChecker over the real instrumented kernels --------------------

TEST(WriteSetKernelTest, GemmRowBlocksAreDisjointAndCovering) {
  util::ThreadPool pool(3);
  WriteSetChecker checker;
  {
    WriteSetScope scope(&checker);
    tensor::Graph g;
    g.SetPool(&pool);
    tensor::Var a = g.Input(tensor::Tensor(33, 8));
    tensor::Var b = g.Input(tensor::Tensor(8, 5));
    tensor::Var c = g.MatMul(a, b);          // Gemm region
    tensor::Var d = g.MatMulTransposeB(c, c);  // GemmTransposeB region
    (void)d;
  }
  EXPECT_TRUE(checker.ok()) << checker.Summary();
  // MatMul + MatMulTransposeB kernels, plus the ThreadPool partitions they
  // ran on, each closed one region.
  EXPECT_GE(checker.regions_checked(), 2u);
}

TEST(WriteSetKernelTest, EmbeddingBagGatherAndScatterAreDisjoint) {
  util::ThreadPool pool(3);
  util::Rng rng(7);
  tensor::ParameterStore store;
  tensor::Parameter* table = store.CreateEmbedding("table", 100, 6, 0.1f, &rng);
  std::vector<std::vector<std::uint32_t>> bags(80);
  for (std::size_t b = 0; b < bags.size(); ++b) {
    bags[b] = {static_cast<std::uint32_t>(b % 100),
               static_cast<std::uint32_t>((b * 7) % 100)};
  }
  WriteSetChecker checker;
  {
    WriteSetScope scope(&checker);
    tensor::Graph g;
    g.SetPool(&pool);
    tensor::Var e = g.EmbeddingBagMean(table, bags);  // forward gather
    tensor::Var n = g.RowL2Normalize(e);              // row-parallel kernel
    tensor::Var loss = g.Mean(n);
    store.ZeroGrads();
    g.Backward(loss);  // scatter into table->grad
  }
  EXPECT_TRUE(checker.ok()) << checker.Summary();
  EXPECT_GE(checker.regions_checked(), 3u);
}

TEST(WriteSetKernelTest, ThreadPoolChunkPartitionIsValidated) {
  util::ThreadPool pool(3);
  WriteSetChecker checker;
  {
    WriteSetScope scope(&checker);
    pool.ParallelForChunks(257, 7,
                           [](std::size_t, std::size_t, std::size_t) {});
  }
  EXPECT_TRUE(checker.ok()) << checker.Summary();
  EXPECT_EQ(checker.regions_checked(), 1u);
}

// ---- End-to-end: a full meta-reweight step under the checker ---------------

TEST_F(RealGraphTest, MetaReweightStepRunsRaceFreeUnderChecker) {
  util::ThreadPool pool(3);
  util::Rng rng(4);
  model::BiEncoder model(SmallConfig(), &rng);
  const kb::KnowledgeBase* kb = &corpus_->kb;
  model::BiEncoder* m = &model;
  train::MetaTrainOptions opts;
  opts.pool = &pool;
  train::MetaReweightTrainer meta(
      opts, model.params(),
      [m, kb](tensor::Graph* g,
              const std::vector<data::LinkingExample>& batch) {
        return m->InBatchLoss(g, batch, *kb);
      });
  const auto& examples = corpus_->ExamplesIn("d");
  std::vector<data::LinkingExample> syn(examples.begin(),
                                        examples.begin() + 12);
  std::vector<data::LinkingExample> seed(examples.begin() + 12,
                                         examples.begin() + 20);
  WriteSetChecker checker;
  {
    WriteSetScope scope(&checker);
    auto weights = meta.Step(syn, seed);
    ASSERT_TRUE(weights.ok());
  }
  EXPECT_TRUE(checker.ok()) << checker.Summary();
  EXPECT_GT(checker.regions_checked(), 0u);
}

}  // namespace
}  // namespace metablink::analysis
