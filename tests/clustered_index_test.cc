#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <thread>

#include "retrieval/clustered_index.h"
#include "retrieval/dense_index.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace metablink::retrieval {
namespace {

tensor::Tensor RandomEmbeddings(std::size_t n, std::size_t d,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor t(n, d);
  for (float& v : t.data()) v = rng.NextFloat(-1, 1);
  return t;
}

// Mixture-of-Gaussians rows: `components` well-separated centers with
// isotropic noise. Uniform random data has no cluster structure for an IVF
// probe to exploit, so recall tests use this instead.
tensor::Tensor MixtureEmbeddings(std::size_t n, std::size_t d,
                                 std::size_t components, float noise,
                                 std::uint64_t seed,
                                 tensor::Tensor* centers_out = nullptr) {
  util::Rng rng(seed);
  tensor::Tensor centers(components, d);
  for (float& v : centers.data()) v = rng.NextFloat(-1.0f, 1.0f);
  tensor::Tensor t(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % components;
    for (std::size_t j = 0; j < d; ++j) {
      t.at(i, j) =
          centers.at(c, j) + noise * static_cast<float>(rng.NextGaussian());
    }
  }
  if (centers_out != nullptr) *centers_out = std::move(centers);
  return t;
}

std::vector<kb::EntityId> Iota(std::size_t n) {
  std::vector<kb::EntityId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<kb::EntityId>(i);
  return ids;
}

void ExpectSameHits(const std::vector<ScoredEntity>& a,
                    const std::vector<ScoredEntity>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;  // bit-identical fp32
  }
}

TEST(ClusteredIndexTest, BuildValidatesInput) {
  DenseIndex base;
  ClusteredIndex clustered;
  EXPECT_FALSE(clustered.Build(base, {}).ok());  // unbuilt base
  ASSERT_TRUE(base.Build(RandomEmbeddings(50, 8, 1), Iota(50)).ok());
  EXPECT_TRUE(clustered.Build(base, {}).ok());
  EXPECT_TRUE(clustered.built());
  EXPECT_EQ(clustered.size(), 50u);
  EXPECT_EQ(clustered.dim(), 8u);
  EXPECT_EQ(clustered.num_clusters(), 7u);  // round(sqrt(50))
  EXPECT_GE(clustered.default_nprobe(), 1u);
  EXPECT_LE(clustered.default_nprobe(), clustered.num_clusters());
  // Every row lands in exactly one inverted list.
  EXPECT_EQ(clustered.list_entries().size(), 50u);
  EXPECT_EQ(clustered.list_offsets().front(), 0u);
  EXPECT_EQ(clustered.list_offsets().back(), 50u);
}

TEST(ClusteredIndexTest, ProbeAllMatchesExhaustiveExactly) {
  // With nprobe == num_clusters every row is visited, and both paths select
  // under the same (score desc, id asc) total order: ids AND scores must be
  // bit-identical to the exhaustive scan — including exact ties from
  // duplicated rows.
  const std::size_t n = 600, d = 16;
  tensor::Tensor emb = RandomEmbeddings(n, d, 2);
  for (std::size_t j = 0; j < d; ++j) {
    emb.at(1, j) = emb.at(0, j);    // duplicate rows -> exact score ties
    emb.at(300, j) = emb.at(0, j);
  }
  DenseIndex base;
  ASSERT_TRUE(base.Build(emb, Iota(n)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());

  util::Rng rng(3);
  TopKScratch base_scratch;
  ClusteredScratch probe_scratch;
  std::vector<ScoredEntity> exact, probed;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    base.TopKInto(q.data(), 33, &base_scratch, &exact);
    clustered.TopKInto(q.data(), 33, clustered.num_clusters(), &probe_scratch,
                       &probed);
    ExpectSameHits(exact, probed);
  }
}

TEST(ClusteredIndexTest, QuantizedProbeAllFullPoolMatchesExact) {
  // Int8 per-cell scan + full-size rescore pool + probe-all: the true top-k
  // cannot fall out of the pool, so the fp32-rescored result equals the
  // exhaustive fp32 scan exactly.
  const std::size_t n = 500, d = 24;
  DenseIndex base;
  ASSERT_TRUE(base.Build(RandomEmbeddings(n, d, 7), Iota(n)).ok());
  base.Quantize();
  ClusteredIndexOptions options;
  options.rescore_pool = n;
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, options).ok());

  util::Rng rng(8);
  TopKScratch base_scratch;
  ClusteredScratch probe_scratch;
  std::vector<ScoredEntity> exact, probed;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    base.TopKInto(q.data(), 12, &base_scratch, &exact);
    clustered.TopKInto(q.data(), 12, clustered.num_clusters(), &probe_scratch,
                       &probed);
    ExpectSameHits(exact, probed);
  }
}

TEST(ClusteredIndexTest, RecallAt64AtDefaultNprobe) {
  // The acceptance gate in miniature: clustered data, default nprobe, R@64
  // overlap with the exhaustive top-64 must stay >= 0.98.
  const std::size_t n = 4000, d = 32, k = 64;
  tensor::Tensor centers;
  tensor::Tensor emb = MixtureEmbeddings(n, d, 16, 0.10f, 11, &centers);
  DenseIndex base;
  ASSERT_TRUE(base.Build(emb, Iota(n)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());

  util::Rng rng(12);
  TopKScratch base_scratch;
  ClusteredScratch probe_scratch;
  std::vector<ScoredEntity> exact, probed;
  double overlap_sum = 0.0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<float> q(d);
    const std::size_t c = rng.NextUint64(centers.rows());
    for (std::size_t j = 0; j < d; ++j) {
      q[j] = centers.at(c, j) + 0.10f * static_cast<float>(rng.NextGaussian());
    }
    base.TopKInto(q.data(), k, &base_scratch, &exact);
    clustered.TopKInto(q.data(), k, /*nprobe=*/0, &probe_scratch, &probed);
    std::set<kb::EntityId> exact_ids;
    for (const auto& e : exact) exact_ids.insert(e.id);
    std::size_t overlap = 0;
    for (const auto& e : probed) overlap += exact_ids.count(e.id);
    overlap_sum += static_cast<double>(overlap) / static_cast<double>(k);
  }
  EXPECT_GE(overlap_sum / trials, 0.98);
}

TEST(ClusteredIndexTest, DeterministicBuildIsByteIdentical) {
  // Same seed, same rows -> byte-identical clustering, with or without a
  // thread pool (assignment is per-point independent; accumulation is a
  // serial point-order pass).
  const std::size_t n = 1200, d = 16;
  tensor::Tensor emb = MixtureEmbeddings(n, d, 10, 0.2f, 21);
  DenseIndex base;
  ASSERT_TRUE(base.Build(emb, Iota(n)).ok());

  util::ThreadPool pool(4);
  ClusteredIndexOptions options;
  options.seed = 99;
  ClusteredIndex serial, pooled;
  ASSERT_TRUE(serial.Build(base, options, nullptr).ok());
  ASSERT_TRUE(pooled.Build(base, options, &pool).ok());

  EXPECT_EQ(serial.list_offsets(), pooled.list_offsets());
  EXPECT_EQ(serial.list_entries(), pooled.list_entries());
  util::BinaryWriter wa, wb;
  serial.Save(&wa);
  pooled.Save(&wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());

  // A different seed draws different init rows -> a different clustering
  // (sanity check that the seed actually reaches the build).
  options.seed = 100;
  ClusteredIndex other;
  ASSERT_TRUE(other.Build(base, options).ok());
  util::BinaryWriter wc;
  other.Save(&wc);
  EXPECT_NE(wa.buffer(), wc.buffer());
}

TEST(ClusteredIndexTest, ShardedMatchesSerialBitForBit) {
  const std::size_t n = 3000, d = 24;
  DenseIndex base;
  ASSERT_TRUE(base.Build(MixtureEmbeddings(n, d, 12, 0.2f, 31), Iota(n)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());

  util::ThreadPool pool(4);
  util::Rng rng(32);
  ClusteredScratch serial_scratch;
  ShardedScratch sharded_scratch;
  std::vector<ScoredEntity> serial_hits, sharded_hits;
  for (const std::size_t nprobe :
       {std::size_t{1}, std::size_t{3}, clustered.default_nprobe(),
        clustered.num_clusters()}) {
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<float> q(d);
      for (float& v : q) v = rng.NextFloat(-1, 1);
      clustered.TopKInto(q.data(), 20, nprobe, &serial_scratch, &serial_hits);
      clustered.TopKSharded(q.data(), 20, nprobe, &pool, &sharded_scratch,
                            &sharded_hits);
      ExpectSameHits(serial_hits, sharded_hits);
    }
  }
}

TEST(ClusteredIndexTest, ShardedMatchesSerialOnQuantizedBase) {
  const std::size_t n = 2000, d = 16;
  DenseIndex base;
  ASSERT_TRUE(base.Build(MixtureEmbeddings(n, d, 8, 0.2f, 41), Iota(n)).ok());
  base.Quantize();
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());

  util::ThreadPool pool(3);
  util::Rng rng(42);
  ClusteredScratch serial_scratch;
  ShardedScratch sharded_scratch;
  std::vector<ScoredEntity> serial_hits, sharded_hits;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    clustered.TopKInto(q.data(), 16, 0, &serial_scratch, &serial_hits);
    clustered.TopKSharded(q.data(), 16, 0, &pool, &sharded_scratch,
                          &sharded_hits);
    ExpectSameHits(serial_hits, sharded_hits);
  }
}

TEST(ClusteredIndexTest, EdgeCaseKZeroAndKOversized) {
  DenseIndex base;
  ASSERT_TRUE(base.Build(RandomEmbeddings(40, 8, 51), Iota(40)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());
  float q[8] = {1, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_TRUE(clustered.TopK(q, 0).empty());
  // Oversized k clamps to a full ranking of the probed rows (probe-all ->
  // every row, exactly once).
  auto all = clustered.TopK(q, 1000, clustered.num_clusters());
  ASSERT_EQ(all.size(), 40u);
  std::set<kb::EntityId> ids;
  for (const auto& hit : all) ids.insert(hit.id);
  EXPECT_EQ(ids.size(), 40u);
}

TEST(ClusteredIndexTest, SaveLoadRoundTripAndAttach) {
  const std::size_t n = 800, d = 16;
  DenseIndex base;
  ASSERT_TRUE(base.Build(MixtureEmbeddings(n, d, 8, 0.2f, 61), Iota(n)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());

  const std::string path = "/tmp/metablink_clustered_index_test.ckpt";
  ASSERT_TRUE(clustered.SaveToFile(path).ok());
  ClusteredIndex restored;
  ASSERT_TRUE(restored.LoadFromFile(path, &base).ok());
  std::remove(path.c_str());

  EXPECT_EQ(restored.num_clusters(), clustered.num_clusters());
  EXPECT_EQ(restored.default_nprobe(), clustered.default_nprobe());
  EXPECT_EQ(restored.list_offsets(), clustered.list_offsets());
  EXPECT_EQ(restored.list_entries(), clustered.list_entries());

  util::Rng rng(62);
  ClusteredScratch sa, sb;
  std::vector<ScoredEntity> a, b;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    clustered.TopKInto(q.data(), 10, 0, &sa, &a);
    restored.TopKInto(q.data(), 10, 0, &sb, &b);
    ExpectSameHits(a, b);
  }

  // Attach rejects a base whose shape does not match the clustering.
  DenseIndex wrong;
  ASSERT_TRUE(wrong.Build(RandomEmbeddings(10, d, 63), Iota(10)).ok());
  EXPECT_FALSE(restored.Attach(&wrong).ok());
  ASSERT_TRUE(restored.Attach(&base).ok());
}

TEST(ClusteredIndexTest, LoadSurvivesBitFlipsWithCleanStatus) {
  DenseIndex base;
  ASSERT_TRUE(base.Build(RandomEmbeddings(200, 8, 71), Iota(200)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());
  const std::string path = "/tmp/metablink_clustered_corrupt_test.ckpt";
  ASSERT_TRUE(clustered.SaveToFile(path).ok());

  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);
  // Flip one bit at positions spread across header, section table, and
  // payload: each corruption must surface as a clean non-OK Status (CRC,
  // magic, or shape validation), never a crash or a silently wrong index.
  for (std::size_t pos = 0; pos < bytes.size(); pos += bytes.size() / 23 + 1) {
    std::vector<char> corrupt = bytes;
    corrupt[pos] ^= 0x20;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    }
    ClusteredIndex victim;
    EXPECT_FALSE(victim.LoadFromFile(path, &base).ok())
        << "bit flip at byte " << pos << " was not detected";
  }
  // Truncation is also a clean failure.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  ClusteredIndex victim;
  EXPECT_FALSE(victim.LoadFromFile(path, &base).ok());
  std::remove(path.c_str());
}

TEST(ClusteredIndexTest, LoadRejectsGarbage) {
  util::BinaryReader reader(std::vector<std::uint8_t>{9, 9, 9, 9});
  ClusteredIndex clustered;
  EXPECT_FALSE(clustered.Load(&reader).ok());
}

TEST(ClusteredIndexTest, ConcurrentQueryHammer) {
  // 8 threads hammer the same immutable index concurrently — half through
  // the serial probe with private scratch, half through the sharded probe
  // over one shared pool (its dispatch uses per-call completion state).
  // Every thread checks its results against precomputed serial answers;
  // under TSan this doubles as the data-race check for the probe path.
  const std::size_t n = 2000, d = 16, k = 12;
  DenseIndex base;
  ASSERT_TRUE(base.Build(MixtureEmbeddings(n, d, 8, 0.2f, 81), Iota(n)).ok());
  base.Quantize();
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());

  const std::size_t num_queries = 32;
  tensor::Tensor queries = RandomEmbeddings(num_queries, d, 82);
  std::vector<std::vector<ScoredEntity>> expected(num_queries);
  {
    ClusteredScratch scratch;
    for (std::size_t i = 0; i < num_queries; ++i) {
      clustered.TopKInto(queries.row_data(i), k, 0, &scratch, &expected[i]);
    }
  }

  util::ThreadPool shared_pool(4);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      ClusteredScratch scratch;
      ShardedScratch sharded;
      std::vector<ScoredEntity> hits;
      for (int round = 0; round < 25; ++round) {
        const std::size_t i = (t * 25 + round) % num_queries;
        if (t % 2 == 0) {
          clustered.TopKInto(queries.row_data(i), k, 0, &scratch, &hits);
        } else {
          clustered.TopKSharded(queries.row_data(i), k, 0, &shared_pool,
                                &sharded, &hits);
        }
        if (hits.size() != expected[i].size()) {
          ++mismatches;
          continue;
        }
        for (std::size_t r = 0; r < hits.size(); ++r) {
          if (hits[r].id != expected[i][r].id ||
              hits[r].score != expected[i][r].score) {
            ++mismatches;
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ClusteredIndexPqTest, BuildValidatesPqOptions) {
  DenseIndex base;
  ASSERT_TRUE(base.Build(RandomEmbeddings(100, 8, 91), Iota(100)).ok());
  ClusteredIndex clustered;
  ClusteredIndexOptions options;
  options.use_pq = true;
  options.pq_nbits = 4;  // only 8-bit codes are supported
  EXPECT_FALSE(clustered.Build(base, options).ok());
  options.pq_nbits = 8;
  options.pq_m = 0;
  EXPECT_FALSE(clustered.Build(base, options).ok());
  options.pq_m = 64;  // > dim clamps to dim
  ASSERT_TRUE(clustered.Build(base, options).ok());
  EXPECT_TRUE(clustered.pq_built());
  EXPECT_EQ(clustered.pq_m(), 8u);
  EXPECT_EQ(clustered.pq_codes().size(), 100u * 8u);
  EXPECT_EQ(clustered.pq_sub_offsets().front(), 0u);
  EXPECT_EQ(clustered.pq_sub_offsets().back(), 8u);
  EXPECT_GT(clustered.PqMemoryBytes(), 0u);
  // A PQ-free rebuild over the same base clears the PQ form.
  ASSERT_TRUE(clustered.Build(base, {}).ok());
  EXPECT_FALSE(clustered.pq_built());
  EXPECT_EQ(clustered.PqMemoryBytes(), 0u);
}

TEST(ClusteredIndexPqTest, PqProbeAllFullPoolMatchesExact) {
  // ADC scan + full-size rescore pool + probe-all: every row enters the
  // pool, so the fp32 re-score reproduces the exhaustive scan exactly —
  // including tie order from duplicated rows.
  const std::size_t n = 500, d = 24;
  tensor::Tensor emb = RandomEmbeddings(n, d, 101);
  for (std::size_t j = 0; j < d; ++j) {
    emb.at(1, j) = emb.at(0, j);
    emb.at(250, j) = emb.at(0, j);
  }
  DenseIndex base;
  ASSERT_TRUE(base.Build(emb, Iota(n)).ok());
  ClusteredIndexOptions options;
  options.use_pq = true;
  options.pq_m = 6;
  options.rescore_pool = n;
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, options).ok());
  ASSERT_TRUE(clustered.pq_built());

  util::Rng rng(102);
  TopKScratch base_scratch;
  ClusteredScratch probe_scratch;
  std::vector<ScoredEntity> exact, probed;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    base.TopKInto(q.data(), 12, &base_scratch, &exact);
    clustered.TopKInto(q.data(), 12, clustered.num_clusters(), &probe_scratch,
                       &probed);
    ExpectSameHits(exact, probed);
  }
}

TEST(ClusteredIndexPqTest, PqRecallAt64AtDefaultNprobe) {
  // The PQ acceptance gate in miniature: clustered data, default nprobe and
  // pool, R@64 overlap with the exhaustive top-64 must stay >= 0.98.
  const std::size_t n = 4000, d = 32, k = 64;
  tensor::Tensor centers;
  tensor::Tensor emb = MixtureEmbeddings(n, d, 16, 0.10f, 111, &centers);
  DenseIndex base;
  ASSERT_TRUE(base.Build(emb, Iota(n)).ok());
  ClusteredIndexOptions options;
  options.use_pq = true;
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, options).ok());

  util::Rng rng(112);
  TopKScratch base_scratch;
  ClusteredScratch probe_scratch;
  std::vector<ScoredEntity> exact, probed;
  double overlap_sum = 0.0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<float> q(d);
    const std::size_t c = rng.NextUint64(centers.rows());
    for (std::size_t j = 0; j < d; ++j) {
      q[j] = centers.at(c, j) + 0.10f * static_cast<float>(rng.NextGaussian());
    }
    base.TopKInto(q.data(), k, &base_scratch, &exact);
    clustered.TopKInto(q.data(), k, /*nprobe=*/0, &probe_scratch, &probed);
    std::set<kb::EntityId> exact_ids;
    for (const auto& e : exact) exact_ids.insert(e.id);
    std::size_t overlap = 0;
    for (const auto& e : probed) overlap += exact_ids.count(e.id);
    overlap_sum += static_cast<double>(overlap) / static_cast<double>(k);
  }
  EXPECT_GE(overlap_sum / trials, 0.98);
}

TEST(ClusteredIndexPqTest, PqScanPrecedenceOverInt8) {
  // A PQ form on a quantized base must probe through ADC, and the sharded
  // probe must still match serially, bit for bit.
  const std::size_t n = 1500, d = 16;
  DenseIndex base;
  ASSERT_TRUE(
      base.Build(MixtureEmbeddings(n, d, 8, 0.2f, 121), Iota(n)).ok());
  base.Quantize();
  ClusteredIndexOptions options;
  options.use_pq = true;
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, options).ok());

  util::ThreadPool pool(4);
  util::Rng rng(122);
  ClusteredScratch serial_scratch;
  ShardedScratch sharded_scratch;
  std::vector<ScoredEntity> serial_hits, sharded_hits;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    clustered.TopKInto(q.data(), 16, 0, &serial_scratch, &serial_hits);
    clustered.TopKSharded(q.data(), 16, 0, &pool, &sharded_scratch,
                          &sharded_hits);
    ExpectSameHits(serial_hits, sharded_hits);
  }
}

TEST(ClusteredIndexPqTest, PqDeterministicBuildIsByteIdentical) {
  const std::size_t n = 1200, d = 16;
  tensor::Tensor emb = MixtureEmbeddings(n, d, 10, 0.2f, 131);
  DenseIndex base;
  ASSERT_TRUE(base.Build(emb, Iota(n)).ok());

  util::ThreadPool pool(4);
  ClusteredIndexOptions options;
  options.seed = 7;
  options.use_pq = true;
  ClusteredIndex serial, pooled;
  ASSERT_TRUE(serial.Build(base, options, nullptr).ok());
  ASSERT_TRUE(pooled.Build(base, options, &pool).ok());
  EXPECT_EQ(serial.pq_codes(), pooled.pq_codes());
  util::BinaryWriter wa, wb;
  serial.Save(&wa);
  pooled.Save(&wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());
}

TEST(ClusteredIndexPqTest, DropPqRestoresPqFreeBytes) {
  // Save writes version 1 whenever no PQ form is present, so dropping the
  // PQ form of an artifact must reproduce a never-PQ build byte for byte —
  // the property FromBundle relies on for use_pq=false serving.
  const std::size_t n = 600, d = 16;
  DenseIndex base;
  ASSERT_TRUE(
      base.Build(MixtureEmbeddings(n, d, 8, 0.2f, 141), Iota(n)).ok());
  ClusteredIndex plain;
  ASSERT_TRUE(plain.Build(base, {}).ok());
  ClusteredIndexOptions options;
  options.use_pq = true;
  ClusteredIndex pq;
  ASSERT_TRUE(pq.Build(base, options).ok());
  ASSERT_TRUE(pq.pq_built());
  pq.DropPq();
  EXPECT_FALSE(pq.pq_built());
  util::BinaryWriter wa, wb;
  plain.Save(&wa);
  pq.Save(&wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());
}

TEST(ClusteredIndexPqTest, PqSaveLoadRoundTripBitIdentity) {
  const std::size_t n = 800, d = 16;
  DenseIndex base;
  ASSERT_TRUE(
      base.Build(MixtureEmbeddings(n, d, 8, 0.2f, 151), Iota(n)).ok());
  ClusteredIndexOptions options;
  options.use_pq = true;
  options.pq_m = 4;
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, options).ok());

  const std::string path = "/tmp/metablink_clustered_pq_roundtrip.ckpt";
  ASSERT_TRUE(clustered.SaveToFile(path).ok());
  ClusteredIndex restored;
  ASSERT_TRUE(restored.LoadFromFile(path, &base).ok());
  std::remove(path.c_str());

  EXPECT_TRUE(restored.pq_built());
  EXPECT_EQ(restored.pq_m(), clustered.pq_m());
  EXPECT_EQ(restored.pq_kc(), clustered.pq_kc());
  EXPECT_EQ(restored.pq_codes(), clustered.pq_codes());
  EXPECT_EQ(restored.pq_codebooks(), clustered.pq_codebooks());
  // Re-saving the loaded index reproduces the original bytes exactly.
  util::BinaryWriter wa, wb;
  clustered.Save(&wa);
  restored.Save(&wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());

  util::Rng rng(152);
  ClusteredScratch sa, sb;
  std::vector<ScoredEntity> a, b;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    clustered.TopKInto(q.data(), 10, 0, &sa, &a);
    restored.TopKInto(q.data(), 10, 0, &sb, &b);
    ExpectSameHits(a, b);
  }
}

TEST(ClusteredIndexPqTest, PqLoadSurvivesBitFlipsWithCleanStatus) {
  DenseIndex base;
  ASSERT_TRUE(base.Build(RandomEmbeddings(200, 8, 161), Iota(200)).ok());
  ClusteredIndexOptions options;
  options.use_pq = true;
  options.pq_m = 4;
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, options).ok());
  const std::string path = "/tmp/metablink_clustered_pq_corrupt.ckpt";
  ASSERT_TRUE(clustered.SaveToFile(path).ok());

  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);
  for (std::size_t pos = 0; pos < bytes.size(); pos += bytes.size() / 37 + 1) {
    std::vector<char> corrupt = bytes;
    corrupt[pos] ^= 0x10;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    }
    ClusteredIndex victim;
    EXPECT_FALSE(victim.LoadFromFile(path, &base).ok())
        << "bit flip at byte " << pos << " was not detected";
  }
  std::remove(path.c_str());
}

// Handcrafted version-2 payloads: each corruption targets one PQ
// validation rule, so a payload that passes the container CRC but lies
// about its contents still fails with a clean Status.
struct PqPayloadTweaks {
  std::uint32_t pq_tag = 0x56495150u;  // "PQIV"
  std::uint64_t pq_m = 2;
  std::uint64_t pq_nbits = 8;
  std::uint64_t pq_kc = 2;
  std::vector<std::uint32_t> sub_offsets = {0, 1, 2};
  std::size_t codebook_floats = 256 * 2;
  float codebook_fill = 0.25f;
  std::vector<std::int8_t> codes = {0, 1, 1, 0, 0, 0, 1, 1};  // 4 rows × 2
};

std::vector<std::uint8_t> BuildPqPayload(const PqPayloadTweaks& t) {
  const std::size_t n = 4, d = 2, kc = 1;
  util::BinaryWriter w;
  w.WriteU32(0x46564943u);  // "CIVF"
  w.WriteU32(2);            // version with PQ block
  w.WriteU64(n);
  w.WriteU64(d);
  w.WriteU64(kc);
  w.WriteU64(1);  // default_nprobe
  w.WriteU64(0);  // rescore_pool
  w.WriteU64(0);  // seed
  w.WriteFloatVector(std::vector<float>{0.5f, 0.5f});      // centroids
  w.WriteFloatVector(std::vector<float>{0.25f});           // half norms
  w.WriteU32Vector(std::vector<std::uint32_t>{0, 4});      // offsets
  w.WriteU32Vector(std::vector<std::uint32_t>{0, 1, 2, 3});  // entries
  w.WriteU32(t.pq_tag);
  w.WriteU64(t.pq_m);
  w.WriteU64(t.pq_nbits);
  w.WriteU64(t.pq_kc);
  w.WriteU32Vector(t.sub_offsets);
  w.WriteFloatVector(std::vector<float>(t.codebook_floats, t.codebook_fill));
  w.WriteByteVector(t.codes);
  return w.buffer();
}

TEST(ClusteredIndexPqTest, LoadValidatesPqPayloadShapes) {
  {
    ClusteredIndex index;
    util::BinaryReader reader(BuildPqPayload(PqPayloadTweaks{}));
    ASSERT_TRUE(index.Load(&reader).ok());  // the baseline payload is valid
    EXPECT_TRUE(index.pq_built());
    EXPECT_EQ(index.pq_m(), 2u);
  }
  const auto expect_rejected = [](PqPayloadTweaks t, const char* what) {
    ClusteredIndex index;
    util::BinaryReader reader(BuildPqPayload(t));
    EXPECT_FALSE(index.Load(&reader).ok()) << what;
  };
  {
    PqPayloadTweaks t;
    t.pq_tag = 0x12345678u;
    expect_rejected(t, "wrong PQIV tag");
  }
  {
    PqPayloadTweaks t;
    t.pq_nbits = 4;
    expect_rejected(t, "unsupported code width");
  }
  {
    PqPayloadTweaks t;
    t.pq_kc = 0;
    expect_rejected(t, "zero codebook entries");
  }
  {
    PqPayloadTweaks t;
    t.pq_kc = 300;
    expect_rejected(t, "codebook entries over 256");
  }
  {
    PqPayloadTweaks t;
    t.pq_m = 3;  // > d
    expect_rejected(t, "more subspaces than dims");
  }
  {
    PqPayloadTweaks t;
    t.sub_offsets = {0, 1};  // wrong length for pq_m = 2
    expect_rejected(t, "subspace bound count");
  }
  {
    PqPayloadTweaks t;
    t.sub_offsets = {0, 2, 2};  // empty second subspace
    expect_rejected(t, "non-increasing subspace bounds");
  }
  {
    PqPayloadTweaks t;
    t.sub_offsets = {1, 1, 2};  // does not start at column 0
    expect_rejected(t, "subspace bounds not spanning [0, d)");
  }
  {
    PqPayloadTweaks t;
    t.codebook_floats = 256;  // half the required 256 * d
    expect_rejected(t, "codebook shape");
  }
  {
    PqPayloadTweaks t;
    t.codebook_fill = std::numeric_limits<float>::quiet_NaN();
    expect_rejected(t, "NaN codebook");
  }
  {
    PqPayloadTweaks t;
    t.codebook_fill = std::numeric_limits<float>::infinity();
    expect_rejected(t, "non-finite codebook");
  }
  {
    PqPayloadTweaks t;
    t.codes = {0, 1, 1, 0, 0, 0};  // 3 rows of codes for 4 entries
    expect_rejected(t, "code count");
  }
  {
    PqPayloadTweaks t;
    t.codes[3] = 2;  // >= pq_kc
    expect_rejected(t, "code out of range");
  }
  {
    // Version 2 without any PQ block at all: truncated stream.
    const std::size_t n = 4, d = 2, kc = 1;
    util::BinaryWriter w;
    w.WriteU32(0x46564943u);
    w.WriteU32(2);
    w.WriteU64(n);
    w.WriteU64(d);
    w.WriteU64(kc);
    w.WriteU64(1);
    w.WriteU64(0);
    w.WriteU64(0);
    w.WriteFloatVector(std::vector<float>{0.5f, 0.5f});
    w.WriteFloatVector(std::vector<float>{0.25f});
    w.WriteU32Vector(std::vector<std::uint32_t>{0, 4});
    w.WriteU32Vector(std::vector<std::uint32_t>{0, 1, 2, 3});
    ClusteredIndex index;
    util::BinaryReader reader(w.buffer());
    EXPECT_FALSE(index.Load(&reader).ok()) << "missing PQ block";
  }
}

}  // namespace
}  // namespace metablink::retrieval
