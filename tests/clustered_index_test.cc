#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <thread>

#include "retrieval/clustered_index.h"
#include "retrieval/dense_index.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace metablink::retrieval {
namespace {

tensor::Tensor RandomEmbeddings(std::size_t n, std::size_t d,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor t(n, d);
  for (float& v : t.data()) v = rng.NextFloat(-1, 1);
  return t;
}

// Mixture-of-Gaussians rows: `components` well-separated centers with
// isotropic noise. Uniform random data has no cluster structure for an IVF
// probe to exploit, so recall tests use this instead.
tensor::Tensor MixtureEmbeddings(std::size_t n, std::size_t d,
                                 std::size_t components, float noise,
                                 std::uint64_t seed,
                                 tensor::Tensor* centers_out = nullptr) {
  util::Rng rng(seed);
  tensor::Tensor centers(components, d);
  for (float& v : centers.data()) v = rng.NextFloat(-1.0f, 1.0f);
  tensor::Tensor t(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % components;
    for (std::size_t j = 0; j < d; ++j) {
      t.at(i, j) =
          centers.at(c, j) + noise * static_cast<float>(rng.NextGaussian());
    }
  }
  if (centers_out != nullptr) *centers_out = std::move(centers);
  return t;
}

std::vector<kb::EntityId> Iota(std::size_t n) {
  std::vector<kb::EntityId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<kb::EntityId>(i);
  return ids;
}

void ExpectSameHits(const std::vector<ScoredEntity>& a,
                    const std::vector<ScoredEntity>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;  // bit-identical fp32
  }
}

TEST(ClusteredIndexTest, BuildValidatesInput) {
  DenseIndex base;
  ClusteredIndex clustered;
  EXPECT_FALSE(clustered.Build(base, {}).ok());  // unbuilt base
  ASSERT_TRUE(base.Build(RandomEmbeddings(50, 8, 1), Iota(50)).ok());
  EXPECT_TRUE(clustered.Build(base, {}).ok());
  EXPECT_TRUE(clustered.built());
  EXPECT_EQ(clustered.size(), 50u);
  EXPECT_EQ(clustered.dim(), 8u);
  EXPECT_EQ(clustered.num_clusters(), 7u);  // round(sqrt(50))
  EXPECT_GE(clustered.default_nprobe(), 1u);
  EXPECT_LE(clustered.default_nprobe(), clustered.num_clusters());
  // Every row lands in exactly one inverted list.
  EXPECT_EQ(clustered.list_entries().size(), 50u);
  EXPECT_EQ(clustered.list_offsets().front(), 0u);
  EXPECT_EQ(clustered.list_offsets().back(), 50u);
}

TEST(ClusteredIndexTest, ProbeAllMatchesExhaustiveExactly) {
  // With nprobe == num_clusters every row is visited, and both paths select
  // under the same (score desc, id asc) total order: ids AND scores must be
  // bit-identical to the exhaustive scan — including exact ties from
  // duplicated rows.
  const std::size_t n = 600, d = 16;
  tensor::Tensor emb = RandomEmbeddings(n, d, 2);
  for (std::size_t j = 0; j < d; ++j) {
    emb.at(1, j) = emb.at(0, j);    // duplicate rows -> exact score ties
    emb.at(300, j) = emb.at(0, j);
  }
  DenseIndex base;
  ASSERT_TRUE(base.Build(emb, Iota(n)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());

  util::Rng rng(3);
  TopKScratch base_scratch;
  ClusteredScratch probe_scratch;
  std::vector<ScoredEntity> exact, probed;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    base.TopKInto(q.data(), 33, &base_scratch, &exact);
    clustered.TopKInto(q.data(), 33, clustered.num_clusters(), &probe_scratch,
                       &probed);
    ExpectSameHits(exact, probed);
  }
}

TEST(ClusteredIndexTest, QuantizedProbeAllFullPoolMatchesExact) {
  // Int8 per-cell scan + full-size rescore pool + probe-all: the true top-k
  // cannot fall out of the pool, so the fp32-rescored result equals the
  // exhaustive fp32 scan exactly.
  const std::size_t n = 500, d = 24;
  DenseIndex base;
  ASSERT_TRUE(base.Build(RandomEmbeddings(n, d, 7), Iota(n)).ok());
  base.Quantize();
  ClusteredIndexOptions options;
  options.rescore_pool = n;
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, options).ok());

  util::Rng rng(8);
  TopKScratch base_scratch;
  ClusteredScratch probe_scratch;
  std::vector<ScoredEntity> exact, probed;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    base.TopKInto(q.data(), 12, &base_scratch, &exact);
    clustered.TopKInto(q.data(), 12, clustered.num_clusters(), &probe_scratch,
                       &probed);
    ExpectSameHits(exact, probed);
  }
}

TEST(ClusteredIndexTest, RecallAt64AtDefaultNprobe) {
  // The acceptance gate in miniature: clustered data, default nprobe, R@64
  // overlap with the exhaustive top-64 must stay >= 0.98.
  const std::size_t n = 4000, d = 32, k = 64;
  tensor::Tensor centers;
  tensor::Tensor emb = MixtureEmbeddings(n, d, 16, 0.10f, 11, &centers);
  DenseIndex base;
  ASSERT_TRUE(base.Build(emb, Iota(n)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());

  util::Rng rng(12);
  TopKScratch base_scratch;
  ClusteredScratch probe_scratch;
  std::vector<ScoredEntity> exact, probed;
  double overlap_sum = 0.0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<float> q(d);
    const std::size_t c = rng.NextUint64(centers.rows());
    for (std::size_t j = 0; j < d; ++j) {
      q[j] = centers.at(c, j) + 0.10f * static_cast<float>(rng.NextGaussian());
    }
    base.TopKInto(q.data(), k, &base_scratch, &exact);
    clustered.TopKInto(q.data(), k, /*nprobe=*/0, &probe_scratch, &probed);
    std::set<kb::EntityId> exact_ids;
    for (const auto& e : exact) exact_ids.insert(e.id);
    std::size_t overlap = 0;
    for (const auto& e : probed) overlap += exact_ids.count(e.id);
    overlap_sum += static_cast<double>(overlap) / static_cast<double>(k);
  }
  EXPECT_GE(overlap_sum / trials, 0.98);
}

TEST(ClusteredIndexTest, DeterministicBuildIsByteIdentical) {
  // Same seed, same rows -> byte-identical clustering, with or without a
  // thread pool (assignment is per-point independent; accumulation is a
  // serial point-order pass).
  const std::size_t n = 1200, d = 16;
  tensor::Tensor emb = MixtureEmbeddings(n, d, 10, 0.2f, 21);
  DenseIndex base;
  ASSERT_TRUE(base.Build(emb, Iota(n)).ok());

  util::ThreadPool pool(4);
  ClusteredIndexOptions options;
  options.seed = 99;
  ClusteredIndex serial, pooled;
  ASSERT_TRUE(serial.Build(base, options, nullptr).ok());
  ASSERT_TRUE(pooled.Build(base, options, &pool).ok());

  EXPECT_EQ(serial.list_offsets(), pooled.list_offsets());
  EXPECT_EQ(serial.list_entries(), pooled.list_entries());
  util::BinaryWriter wa, wb;
  serial.Save(&wa);
  pooled.Save(&wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());

  // A different seed draws different init rows -> a different clustering
  // (sanity check that the seed actually reaches the build).
  options.seed = 100;
  ClusteredIndex other;
  ASSERT_TRUE(other.Build(base, options).ok());
  util::BinaryWriter wc;
  other.Save(&wc);
  EXPECT_NE(wa.buffer(), wc.buffer());
}

TEST(ClusteredIndexTest, ShardedMatchesSerialBitForBit) {
  const std::size_t n = 3000, d = 24;
  DenseIndex base;
  ASSERT_TRUE(base.Build(MixtureEmbeddings(n, d, 12, 0.2f, 31), Iota(n)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());

  util::ThreadPool pool(4);
  util::Rng rng(32);
  ClusteredScratch serial_scratch;
  ShardedScratch sharded_scratch;
  std::vector<ScoredEntity> serial_hits, sharded_hits;
  for (const std::size_t nprobe :
       {std::size_t{1}, std::size_t{3}, clustered.default_nprobe(),
        clustered.num_clusters()}) {
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<float> q(d);
      for (float& v : q) v = rng.NextFloat(-1, 1);
      clustered.TopKInto(q.data(), 20, nprobe, &serial_scratch, &serial_hits);
      clustered.TopKSharded(q.data(), 20, nprobe, &pool, &sharded_scratch,
                            &sharded_hits);
      ExpectSameHits(serial_hits, sharded_hits);
    }
  }
}

TEST(ClusteredIndexTest, ShardedMatchesSerialOnQuantizedBase) {
  const std::size_t n = 2000, d = 16;
  DenseIndex base;
  ASSERT_TRUE(base.Build(MixtureEmbeddings(n, d, 8, 0.2f, 41), Iota(n)).ok());
  base.Quantize();
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());

  util::ThreadPool pool(3);
  util::Rng rng(42);
  ClusteredScratch serial_scratch;
  ShardedScratch sharded_scratch;
  std::vector<ScoredEntity> serial_hits, sharded_hits;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    clustered.TopKInto(q.data(), 16, 0, &serial_scratch, &serial_hits);
    clustered.TopKSharded(q.data(), 16, 0, &pool, &sharded_scratch,
                          &sharded_hits);
    ExpectSameHits(serial_hits, sharded_hits);
  }
}

TEST(ClusteredIndexTest, EdgeCaseKZeroAndKOversized) {
  DenseIndex base;
  ASSERT_TRUE(base.Build(RandomEmbeddings(40, 8, 51), Iota(40)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());
  float q[8] = {1, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_TRUE(clustered.TopK(q, 0).empty());
  // Oversized k clamps to a full ranking of the probed rows (probe-all ->
  // every row, exactly once).
  auto all = clustered.TopK(q, 1000, clustered.num_clusters());
  ASSERT_EQ(all.size(), 40u);
  std::set<kb::EntityId> ids;
  for (const auto& hit : all) ids.insert(hit.id);
  EXPECT_EQ(ids.size(), 40u);
}

TEST(ClusteredIndexTest, SaveLoadRoundTripAndAttach) {
  const std::size_t n = 800, d = 16;
  DenseIndex base;
  ASSERT_TRUE(base.Build(MixtureEmbeddings(n, d, 8, 0.2f, 61), Iota(n)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());

  const std::string path = "/tmp/metablink_clustered_index_test.ckpt";
  ASSERT_TRUE(clustered.SaveToFile(path).ok());
  ClusteredIndex restored;
  ASSERT_TRUE(restored.LoadFromFile(path, &base).ok());
  std::remove(path.c_str());

  EXPECT_EQ(restored.num_clusters(), clustered.num_clusters());
  EXPECT_EQ(restored.default_nprobe(), clustered.default_nprobe());
  EXPECT_EQ(restored.list_offsets(), clustered.list_offsets());
  EXPECT_EQ(restored.list_entries(), clustered.list_entries());

  util::Rng rng(62);
  ClusteredScratch sa, sb;
  std::vector<ScoredEntity> a, b;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> q(d);
    for (float& v : q) v = rng.NextFloat(-1, 1);
    clustered.TopKInto(q.data(), 10, 0, &sa, &a);
    restored.TopKInto(q.data(), 10, 0, &sb, &b);
    ExpectSameHits(a, b);
  }

  // Attach rejects a base whose shape does not match the clustering.
  DenseIndex wrong;
  ASSERT_TRUE(wrong.Build(RandomEmbeddings(10, d, 63), Iota(10)).ok());
  EXPECT_FALSE(restored.Attach(&wrong).ok());
  ASSERT_TRUE(restored.Attach(&base).ok());
}

TEST(ClusteredIndexTest, LoadSurvivesBitFlipsWithCleanStatus) {
  DenseIndex base;
  ASSERT_TRUE(base.Build(RandomEmbeddings(200, 8, 71), Iota(200)).ok());
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());
  const std::string path = "/tmp/metablink_clustered_corrupt_test.ckpt";
  ASSERT_TRUE(clustered.SaveToFile(path).ok());

  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);
  // Flip one bit at positions spread across header, section table, and
  // payload: each corruption must surface as a clean non-OK Status (CRC,
  // magic, or shape validation), never a crash or a silently wrong index.
  for (std::size_t pos = 0; pos < bytes.size(); pos += bytes.size() / 23 + 1) {
    std::vector<char> corrupt = bytes;
    corrupt[pos] ^= 0x20;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    }
    ClusteredIndex victim;
    EXPECT_FALSE(victim.LoadFromFile(path, &base).ok())
        << "bit flip at byte " << pos << " was not detected";
  }
  // Truncation is also a clean failure.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  ClusteredIndex victim;
  EXPECT_FALSE(victim.LoadFromFile(path, &base).ok());
  std::remove(path.c_str());
}

TEST(ClusteredIndexTest, LoadRejectsGarbage) {
  util::BinaryReader reader(std::vector<std::uint8_t>{9, 9, 9, 9});
  ClusteredIndex clustered;
  EXPECT_FALSE(clustered.Load(&reader).ok());
}

TEST(ClusteredIndexTest, ConcurrentQueryHammer) {
  // 8 threads hammer the same immutable index concurrently — half through
  // the serial probe with private scratch, half through the sharded probe
  // over one shared pool (its dispatch uses per-call completion state).
  // Every thread checks its results against precomputed serial answers;
  // under TSan this doubles as the data-race check for the probe path.
  const std::size_t n = 2000, d = 16, k = 12;
  DenseIndex base;
  ASSERT_TRUE(base.Build(MixtureEmbeddings(n, d, 8, 0.2f, 81), Iota(n)).ok());
  base.Quantize();
  ClusteredIndex clustered;
  ASSERT_TRUE(clustered.Build(base, {}).ok());

  const std::size_t num_queries = 32;
  tensor::Tensor queries = RandomEmbeddings(num_queries, d, 82);
  std::vector<std::vector<ScoredEntity>> expected(num_queries);
  {
    ClusteredScratch scratch;
    for (std::size_t i = 0; i < num_queries; ++i) {
      clustered.TopKInto(queries.row_data(i), k, 0, &scratch, &expected[i]);
    }
  }

  util::ThreadPool shared_pool(4);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      ClusteredScratch scratch;
      ShardedScratch sharded;
      std::vector<ScoredEntity> hits;
      for (int round = 0; round < 25; ++round) {
        const std::size_t i = (t * 25 + round) % num_queries;
        if (t % 2 == 0) {
          clustered.TopKInto(queries.row_data(i), k, 0, &scratch, &hits);
        } else {
          clustered.TopKSharded(queries.row_data(i), k, 0, &shared_pool,
                                &sharded, &hits);
        }
        if (hits.size() != expected[i].size()) {
          ++mismatches;
          continue;
        }
        for (std::size_t r = 0; r < hits.size(); ++r) {
          if (hits[r].id != expected[i][r].id ||
              hits[r].score != expected[i][r].score) {
            ++mismatches;
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace metablink::retrieval
