#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/graph.h"
#include "tensor/optimizer.h"
#include "tensor/parameter.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace metablink::tensor {
namespace {

// ---- Tensor ----------------------------------------------------------------

TEST(TensorTest, ShapeAndIndexing) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t.data()[5], 5.0f);
  EXPECT_EQ(t.Row(1)[2], 5.0f);
}

TEST(TensorTest, RowVectorAndZero) {
  Tensor t = Tensor::RowVector({1, 2, 3});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 3u);
  t.SetZero();
  EXPECT_EQ(t.Norm(), 0.0f);
}

TEST(TensorTest, DotAndAxpy) {
  float a[] = {1, 2, 3};
  float b[] = {4, 5, 6};
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 32.0f);
  Axpy(2.0f, a, b, 3);
  EXPECT_FLOAT_EQ(b[0], 6.0f);
  EXPECT_FLOAT_EQ(b[2], 12.0f);
}

// ---- ParameterStore --------------------------------------------------------

TEST(ParameterStoreTest, CreateAndFind) {
  ParameterStore store;
  Parameter* p = store.Create("w", 2, 3);
  EXPECT_EQ(store.Find("w"), p);
  EXPECT_EQ(store.Find("absent"), nullptr);
  EXPECT_EQ(store.TotalSize(), 6u);
}

TEST(ParameterStoreTest, XavierInitWithinBounds) {
  ParameterStore store;
  util::Rng rng(5);
  Parameter* p = store.CreateXavier("w", 10, 10, &rng);
  const float bound = std::sqrt(6.0f / 20.0f);
  bool nonzero = false;
  for (float v : p->value.data()) {
    EXPECT_LE(std::abs(v), bound);
    if (v != 0.0f) nonzero = true;
  }
  EXPECT_TRUE(nonzero);
}

TEST(ParameterStoreTest, FlattenAndLoadValuesRoundTrip) {
  ParameterStore store;
  util::Rng rng(5);
  store.CreateNormal("a", 3, 4, 1.0f, &rng);
  store.CreateNormal("b", 2, 2, 1.0f, &rng);
  auto flat = store.FlattenValues();
  EXPECT_EQ(flat.size(), 16u);
  std::vector<float> doubled = flat;
  for (float& v : doubled) v *= 2.0f;
  ASSERT_TRUE(store.LoadValues(doubled).ok());
  EXPECT_FLOAT_EQ(store.Find("a")->value.data()[0], flat[0] * 2.0f);
  EXPECT_FALSE(store.LoadValues({1.0f}).ok());  // wrong size
}

TEST(ParameterStoreTest, SaveLoadRoundTrip) {
  util::Rng rng(5);
  ParameterStore a;
  a.CreateNormal("w", 4, 4, 1.0f, &rng);
  util::BinaryWriter writer;
  a.Save(&writer);

  ParameterStore b;
  b.Create("w", 4, 4);
  util::BinaryReader reader(writer.buffer());
  ASSERT_TRUE(b.Load(&reader).ok());
  EXPECT_EQ(a.FlattenValues(), b.FlattenValues());
}

TEST(ParameterStoreTest, LoadRejectsShapeMismatch) {
  util::Rng rng(5);
  ParameterStore a;
  a.CreateNormal("w", 4, 4, 1.0f, &rng);
  util::BinaryWriter writer;
  a.Save(&writer);

  ParameterStore b;
  b.Create("w", 2, 2);
  util::BinaryReader reader(writer.buffer());
  EXPECT_FALSE(b.Load(&reader).ok());
}

TEST(ParameterStoreTest, SparseGradTrackingMatchesDense) {
  // A sparse-tracked table and a dense parameter must produce the same
  // ZeroGrads / GradDot semantics.
  util::Rng rng(7);
  ParameterStore store;
  Parameter* table = store.CreateEmbedding("t", 100, 4, 0.1f, &rng);

  Graph g;
  Var pooled = g.EmbeddingBagMean(table, {{3, 7}, {7, 50}});
  Var loss = g.Sum(pooled);
  store.ZeroGrads();
  g.Backward(loss);

  // Rows 3, 7, 50 touched; everything else zero.
  EXPECT_EQ(table->touched_rows.size(), 3u);
  std::vector<float> dense = store.FlattenGrads();
  double dense_dot = 0.0;
  for (float v : dense) dense_dot += static_cast<double>(v) * v;
  EXPECT_NEAR(store.GradDot(dense), dense_dot, 1e-6);

  store.ZeroGrads();
  EXPECT_TRUE(table->touched_rows.empty());
  for (float v : store.FlattenGrads()) EXPECT_EQ(v, 0.0f);
}

// ---- Gradient checks (finite differences) ----------------------------------

// Builds loss(params) via `forward`, then checks d loss / d params against
// central differences at a handful of coordinates.
void CheckGradients(ParameterStore* store,
                    const std::function<Var(Graph*)>& forward,
                    double tol = 2e-2) {
  Graph g;
  Var loss = forward(&g);
  ASSERT_EQ(g.value(loss).size(), 1u) << "loss must be scalar";
  store->ZeroGrads();
  g.Backward(loss);

  util::Rng rng(99);
  for (const auto& p : store->parameters()) {
    for (int probe = 0; probe < 5; ++probe) {
      const std::size_t i = rng.NextUint64(p->value.size());
      const float eps = 1e-3f;
      const float orig = p->value.data()[i];

      p->value.data()[i] = orig + eps;
      Graph gp;
      const float up = gp.value(forward(&gp)).at(0, 0);
      p->value.data()[i] = orig - eps;
      Graph gm;
      const float down = gm.value(forward(&gm)).at(0, 0);
      p->value.data()[i] = orig;

      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = p->grad.data()[i];
      EXPECT_NEAR(analytic, numeric,
                  tol * std::max(1.0, std::abs(numeric)))
          << "param " << p->name << " index " << i;
    }
  }
}

TEST(GradCheckTest, MatMulChain) {
  util::Rng rng(1);
  ParameterStore store;
  Parameter* w = store.CreateXavier("w", 4, 3, &rng);
  Parameter* b = store.CreateNormal("b", 1, 3, 0.5f, &rng);
  Tensor x(2, 4);
  for (float& v : x.data()) v = rng.NextFloat(-1, 1);
  CheckGradients(&store, [&](Graph* g) {
    Var input = g->Input(x);
    Var h = g->AddBiasRow(g->MatMul(input, g->Param(w)), g->Param(b));
    return g->Mean(g->Tanh(h));
  });
}

TEST(GradCheckTest, MatMulBothSidesAreParams) {
  util::Rng rng(2);
  ParameterStore store;
  Parameter* a = store.CreateNormal("a", 3, 4, 0.5f, &rng);
  Parameter* b = store.CreateNormal("b", 4, 2, 0.5f, &rng);
  CheckGradients(&store, [&](Graph* g) {
    return g->Mean(g->MatMul(g->Param(a), g->Param(b)));
  });
}

TEST(GradCheckTest, MatMulTransposeB) {
  util::Rng rng(3);
  ParameterStore store;
  Parameter* a = store.CreateNormal("a", 3, 4, 0.5f, &rng);
  Parameter* b = store.CreateNormal("b", 5, 4, 0.5f, &rng);
  CheckGradients(&store, [&](Graph* g) {
    return g->Mean(g->Tanh(g->MatMulTransposeB(g->Param(a), g->Param(b))));
  });
}

TEST(GradCheckTest, EmbeddingBagMean) {
  util::Rng rng(4);
  ParameterStore store;
  Parameter* table = store.CreateNormal("t", 10, 3, 0.5f, &rng);
  std::vector<std::vector<std::uint32_t>> bags = {{0, 1, 1}, {5}, {}};
  CheckGradients(&store, [&](Graph* g) {
    return g->Mean(g->Tanh(g->EmbeddingBagMean(table, bags)));
  });
}

TEST(GradCheckTest, ReluAndSigmoidAndScale) {
  util::Rng rng(5);
  ParameterStore store;
  Parameter* w = store.CreateNormal("w", 2, 6, 0.8f, &rng);
  CheckGradients(&store, [&](Graph* g) {
    Var x = g->Param(w);
    return g->Mean(g->Sigmoid(g->Scale(g->Relu(x), 1.7f)));
  });
}

TEST(GradCheckTest, AddSubMul) {
  util::Rng rng(6);
  ParameterStore store;
  Parameter* a = store.CreateNormal("a", 2, 3, 0.5f, &rng);
  Parameter* b = store.CreateNormal("b", 2, 3, 0.5f, &rng);
  CheckGradients(&store, [&](Graph* g) {
    Var va = g->Param(a), vb = g->Param(b);
    return g->Mean(g->Mul(g->Add(va, vb), g->Sub(va, vb)));
  });
}

TEST(GradCheckTest, RowL2Normalize) {
  util::Rng rng(7);
  ParameterStore store;
  Parameter* w = store.CreateNormal("w", 3, 4, 1.0f, &rng);
  CheckGradients(&store, [&](Graph* g) {
    Var y = g->RowL2Normalize(g->Param(w));
    // A non-symmetric readout so the Jacobian is exercised off-diagonal.
    Tensor mask(3, 4);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      mask.data()[i] = static_cast<float>(i % 3) - 1.0f;
    }
    return g->Mean(g->Mul(y, g->Input(mask)));
  });
}

TEST(GradCheckTest, ConcatColsAndRowsAndReshape) {
  util::Rng rng(8);
  ParameterStore store;
  Parameter* a = store.CreateNormal("a", 2, 3, 0.5f, &rng);
  Parameter* b = store.CreateNormal("b", 2, 2, 0.5f, &rng);
  CheckGradients(&store, [&](Graph* g) {
    Var cat = g->ConcatCols(g->Param(a), g->Param(b));  // [2,5]
    Var reshaped = g->Reshape(cat, 1, 10);
    Var stacked = g->ConcatRows({reshaped, reshaped});  // [2,10]
    return g->Mean(g->Tanh(stacked));
  });
}

TEST(GradCheckTest, BroadcastRow) {
  util::Rng rng(12);
  ParameterStore store;
  Parameter* w = store.CreateNormal("w", 1, 4, 0.5f, &rng);
  Tensor mask(3, 4);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = static_cast<float>((i * 7) % 5) - 2.0f;
  }
  CheckGradients(&store, [&](Graph* g) {
    Var rows = g->BroadcastRow(g->Param(w), 3);
    return g->Mean(g->Mul(g->Tanh(rows), g->Input(mask)));
  });
}

TEST(GradCheckTest, RowDot) {
  util::Rng rng(9);
  ParameterStore store;
  Parameter* a = store.CreateNormal("a", 3, 4, 0.5f, &rng);
  Parameter* b = store.CreateNormal("b", 3, 4, 0.5f, &rng);
  CheckGradients(&store, [&](Graph* g) {
    return g->Mean(g->Tanh(g->RowDot(g->Param(a), g->Param(b))));
  });
}

TEST(GradCheckTest, SoftmaxCrossEntropy) {
  util::Rng rng(10);
  ParameterStore store;
  Parameter* logits = store.CreateNormal("l", 3, 5, 1.0f, &rng);
  CheckGradients(&store, [&](Graph* g) {
    return g->Mean(g->SoftmaxCrossEntropy(g->Param(logits), {0, 3, 4}));
  });
}

TEST(GradCheckTest, WeightedSumAndSum) {
  util::Rng rng(11);
  ParameterStore store;
  Parameter* w = store.CreateNormal("w", 4, 1, 1.0f, &rng);
  CheckGradients(&store, [&](Graph* g) {
    Var wsum = g->WeightedSum(g->Param(w), {0.1f, 0.0f, 0.5f, 0.4f});
    return wsum;
  });
  CheckGradients(&store, [&](Graph* g) {
    return g->Sum(g->Tanh(g->Param(w)));
  });
}

// ---- Forward values --------------------------------------------------------

TEST(GraphTest, SoftmaxCrossEntropyValue) {
  Graph g;
  Tensor logits(1, 2);
  logits.at(0, 0) = 0.0f;
  logits.at(0, 1) = 0.0f;
  Var loss = g.SoftmaxCrossEntropy(g.Input(logits), {0});
  EXPECT_NEAR(g.value(loss).at(0, 0), std::log(2.0), 1e-6);
}

TEST(GraphTest, RowL2NormalizeUnitRows) {
  Graph g;
  Tensor x(2, 3);
  x.at(0, 0) = 3.0f;
  x.at(0, 1) = 4.0f;
  x.at(1, 2) = -2.0f;
  Var y = g.RowL2Normalize(g.Input(x));
  EXPECT_NEAR(g.value(y).at(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(g.value(y).at(0, 1), 0.8f, 1e-6);
  EXPECT_NEAR(g.value(y).at(1, 2), -1.0f, 1e-6);
}

TEST(GraphTest, EmbeddingBagMeanEmptyBagIsZeroRow) {
  util::Rng rng(1);
  ParameterStore store;
  Parameter* table = store.CreateNormal("t", 4, 2, 1.0f, &rng);
  Graph g;
  Var v = g.EmbeddingBagMean(table, {{}, {1}});
  EXPECT_EQ(g.value(v).at(0, 0), 0.0f);
  EXPECT_EQ(g.value(v).at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(g.value(v).at(1, 0), table->value.at(1, 0));
}

TEST(GraphTest, RepeatedBackwardAccumulatesIntoParams) {
  util::Rng rng(2);
  ParameterStore store;
  Parameter* w = store.CreateNormal("w", 1, 2, 1.0f, &rng);
  Graph g;
  Var loss = g.Sum(g.Param(w));
  store.ZeroGrads();
  g.Backward(loss);
  EXPECT_FLOAT_EQ(w->grad.at(0, 0), 1.0f);
  // A second backward over the same tape without reset doubles node grads.
  g.ResetGrads();
  g.Backward(loss);
  EXPECT_FLOAT_EQ(w->grad.at(0, 0), 2.0f);  // param grads accumulate
  store.ZeroGrads();
  g.ResetGrads();
  g.Backward(loss);
  EXPECT_FLOAT_EQ(w->grad.at(0, 0), 1.0f);
}

TEST(GraphTest, OneHotSeedGivesPerRowGradient) {
  util::Rng rng(3);
  ParameterStore store;
  Parameter* table = store.CreateNormal("t", 6, 2, 1.0f, &rng);
  Graph g;
  Var pooled = g.EmbeddingBagMean(table, {{0}, {1}});
  Var col = g.RowDot(pooled, pooled);  // [2,1]
  // Backward only row 1: row 0's bag (id 0) must receive no gradient.
  store.ZeroGrads();
  g.ResetGrads();
  g.BackwardWithSeed(col, {0.0f, 1.0f});
  EXPECT_EQ(table->grad.at(0, 0), 0.0f);
  EXPECT_NE(table->grad.at(1, 0), 0.0f);
}

// ---- Optimizers ------------------------------------------------------------

TEST(OptimizerTest, SgdMinimizesQuadratic) {
  ParameterStore store;
  Parameter* w = store.Create("w", 1, 1);
  w->value.at(0, 0) = 5.0f;
  SgdOptimizer opt(0.1f);
  for (int i = 0; i < 200; ++i) {
    store.ZeroGrads();
    w->grad.at(0, 0) = 2.0f * w->value.at(0, 0);  // d/dw w^2
    opt.Step(&store);
  }
  EXPECT_NEAR(w->value.at(0, 0), 0.0f, 1e-4);
}

TEST(OptimizerTest, SgdMomentumConverges) {
  ParameterStore store;
  Parameter* w = store.Create("w", 1, 1);
  w->value.at(0, 0) = 5.0f;
  SgdOptimizer opt(0.05f, /*momentum=*/0.9f);
  for (int i = 0; i < 300; ++i) {
    store.ZeroGrads();
    w->grad.at(0, 0) = 2.0f * w->value.at(0, 0);
    opt.Step(&store);
  }
  EXPECT_NEAR(w->value.at(0, 0), 0.0f, 1e-3);
}

TEST(OptimizerTest, AdamMinimizesQuadratic) {
  ParameterStore store;
  Parameter* w = store.Create("w", 1, 2);
  w->value.at(0, 0) = 3.0f;
  w->value.at(0, 1) = -4.0f;
  AdamOptimizer opt(0.1f);
  for (int i = 0; i < 500; ++i) {
    store.ZeroGrads();
    w->grad.at(0, 0) = 2.0f * w->value.at(0, 0);
    w->grad.at(0, 1) = 2.0f * w->value.at(0, 1);
    opt.Step(&store);
  }
  EXPECT_NEAR(w->value.at(0, 0), 0.0f, 1e-3);
  EXPECT_NEAR(w->value.at(0, 1), 0.0f, 1e-3);
  EXPECT_EQ(opt.step_count(), 500);
}

TEST(OptimizerTest, LearningRateMutable) {
  AdamOptimizer opt(0.1f);
  opt.set_learning_rate(0.5f);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.5f);
}

TEST(OptimizerTest, LazyAdamOnlyUpdatesTouchedRows) {
  util::Rng rng(4);
  ParameterStore store;
  Parameter* table = store.CreateEmbedding("t", 8, 2, 0.5f, &rng);
  const float untouched_before = table->value.at(5, 0);
  AdamOptimizer opt(0.1f);
  store.ZeroGrads();
  // Touch only row 2.
  Graph g;
  Var loss = g.Sum(g.EmbeddingBagMean(table, {{2}}));
  g.Backward(loss);
  const float touched_before = table->value.at(2, 0);
  opt.Step(&store);
  EXPECT_EQ(table->value.at(5, 0), untouched_before);
  EXPECT_NE(table->value.at(2, 0), touched_before);
}

}  // namespace
}  // namespace metablink::tensor
