file(REMOVE_RECURSE
  "CMakeFiles/fewshot_lego.dir/fewshot_lego.cpp.o"
  "CMakeFiles/fewshot_lego.dir/fewshot_lego.cpp.o.d"
  "fewshot_lego"
  "fewshot_lego.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fewshot_lego.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
