# Empty dependencies file for fewshot_lego.
# This may be replaced when dependencies are built.
