
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/metablink_core.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/metablink_train.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/metablink_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/metablink_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/metablink_model.dir/DependInfo.cmake"
  "/root/repo/build/src/retrieval/CMakeFiles/metablink_retrieval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/metablink_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/metablink_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/metablink_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/metablink_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/metablink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
