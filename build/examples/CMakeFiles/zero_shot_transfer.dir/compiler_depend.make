# Empty compiler generated dependencies file for zero_shot_transfer.
# This may be replaced when dependencies are built.
