file(REMOVE_RECURSE
  "libmetablink_tensor.a"
)
