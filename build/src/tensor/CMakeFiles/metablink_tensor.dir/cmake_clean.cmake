file(REMOVE_RECURSE
  "CMakeFiles/metablink_tensor.dir/graph.cc.o"
  "CMakeFiles/metablink_tensor.dir/graph.cc.o.d"
  "CMakeFiles/metablink_tensor.dir/optimizer.cc.o"
  "CMakeFiles/metablink_tensor.dir/optimizer.cc.o.d"
  "CMakeFiles/metablink_tensor.dir/parameter.cc.o"
  "CMakeFiles/metablink_tensor.dir/parameter.cc.o.d"
  "CMakeFiles/metablink_tensor.dir/tensor.cc.o"
  "CMakeFiles/metablink_tensor.dir/tensor.cc.o.d"
  "libmetablink_tensor.a"
  "libmetablink_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metablink_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
