# Empty compiler generated dependencies file for metablink_tensor.
# This may be replaced when dependencies are built.
