file(REMOVE_RECURSE
  "libmetablink_kb.a"
)
