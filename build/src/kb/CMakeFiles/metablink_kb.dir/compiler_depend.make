# Empty compiler generated dependencies file for metablink_kb.
# This may be replaced when dependencies are built.
