file(REMOVE_RECURSE
  "CMakeFiles/metablink_kb.dir/knowledge_base.cc.o"
  "CMakeFiles/metablink_kb.dir/knowledge_base.cc.o.d"
  "CMakeFiles/metablink_kb.dir/title_index.cc.o"
  "CMakeFiles/metablink_kb.dir/title_index.cc.o.d"
  "libmetablink_kb.a"
  "libmetablink_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metablink_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
