file(REMOVE_RECURSE
  "CMakeFiles/metablink_model.dir/bi_encoder.cc.o"
  "CMakeFiles/metablink_model.dir/bi_encoder.cc.o.d"
  "CMakeFiles/metablink_model.dir/cross_encoder.cc.o"
  "CMakeFiles/metablink_model.dir/cross_encoder.cc.o.d"
  "CMakeFiles/metablink_model.dir/features.cc.o"
  "CMakeFiles/metablink_model.dir/features.cc.o.d"
  "libmetablink_model.a"
  "libmetablink_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metablink_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
