
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/bi_encoder.cc" "src/model/CMakeFiles/metablink_model.dir/bi_encoder.cc.o" "gcc" "src/model/CMakeFiles/metablink_model.dir/bi_encoder.cc.o.d"
  "/root/repo/src/model/cross_encoder.cc" "src/model/CMakeFiles/metablink_model.dir/cross_encoder.cc.o" "gcc" "src/model/CMakeFiles/metablink_model.dir/cross_encoder.cc.o.d"
  "/root/repo/src/model/features.cc" "src/model/CMakeFiles/metablink_model.dir/features.cc.o" "gcc" "src/model/CMakeFiles/metablink_model.dir/features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/metablink_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/metablink_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/metablink_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/metablink_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/metablink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
