file(REMOVE_RECURSE
  "libmetablink_model.a"
)
