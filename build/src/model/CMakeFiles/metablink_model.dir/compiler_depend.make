# Empty compiler generated dependencies file for metablink_model.
# This may be replaced when dependencies are built.
