# Empty compiler generated dependencies file for metablink_gen.
# This may be replaced when dependencies are built.
