file(REMOVE_RECURSE
  "libmetablink_gen.a"
)
