file(REMOVE_RECURSE
  "CMakeFiles/metablink_gen.dir/bad_data.cc.o"
  "CMakeFiles/metablink_gen.dir/bad_data.cc.o.d"
  "CMakeFiles/metablink_gen.dir/exact_matcher.cc.o"
  "CMakeFiles/metablink_gen.dir/exact_matcher.cc.o.d"
  "CMakeFiles/metablink_gen.dir/rewriter.cc.o"
  "CMakeFiles/metablink_gen.dir/rewriter.cc.o.d"
  "CMakeFiles/metablink_gen.dir/seed_selector.cc.o"
  "CMakeFiles/metablink_gen.dir/seed_selector.cc.o.d"
  "libmetablink_gen.a"
  "libmetablink_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metablink_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
