
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/bad_data.cc" "src/gen/CMakeFiles/metablink_gen.dir/bad_data.cc.o" "gcc" "src/gen/CMakeFiles/metablink_gen.dir/bad_data.cc.o.d"
  "/root/repo/src/gen/exact_matcher.cc" "src/gen/CMakeFiles/metablink_gen.dir/exact_matcher.cc.o" "gcc" "src/gen/CMakeFiles/metablink_gen.dir/exact_matcher.cc.o.d"
  "/root/repo/src/gen/rewriter.cc" "src/gen/CMakeFiles/metablink_gen.dir/rewriter.cc.o" "gcc" "src/gen/CMakeFiles/metablink_gen.dir/rewriter.cc.o.d"
  "/root/repo/src/gen/seed_selector.cc" "src/gen/CMakeFiles/metablink_gen.dir/seed_selector.cc.o" "gcc" "src/gen/CMakeFiles/metablink_gen.dir/seed_selector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/metablink_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/metablink_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/metablink_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/metablink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
