file(REMOVE_RECURSE
  "CMakeFiles/metablink_text.dir/feature_hashing.cc.o"
  "CMakeFiles/metablink_text.dir/feature_hashing.cc.o.d"
  "CMakeFiles/metablink_text.dir/rouge.cc.o"
  "CMakeFiles/metablink_text.dir/rouge.cc.o.d"
  "CMakeFiles/metablink_text.dir/string_metrics.cc.o"
  "CMakeFiles/metablink_text.dir/string_metrics.cc.o.d"
  "CMakeFiles/metablink_text.dir/tfidf.cc.o"
  "CMakeFiles/metablink_text.dir/tfidf.cc.o.d"
  "CMakeFiles/metablink_text.dir/tokenizer.cc.o"
  "CMakeFiles/metablink_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/metablink_text.dir/vocabulary.cc.o"
  "CMakeFiles/metablink_text.dir/vocabulary.cc.o.d"
  "libmetablink_text.a"
  "libmetablink_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metablink_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
