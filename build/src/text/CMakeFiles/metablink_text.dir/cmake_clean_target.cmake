file(REMOVE_RECURSE
  "libmetablink_text.a"
)
