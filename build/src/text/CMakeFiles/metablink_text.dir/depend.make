# Empty dependencies file for metablink_text.
# This may be replaced when dependencies are built.
