# Empty compiler generated dependencies file for metablink_train.
# This may be replaced when dependencies are built.
