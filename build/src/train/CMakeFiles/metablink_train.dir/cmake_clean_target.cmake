file(REMOVE_RECURSE
  "libmetablink_train.a"
)
