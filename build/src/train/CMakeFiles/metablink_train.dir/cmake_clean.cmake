file(REMOVE_RECURSE
  "CMakeFiles/metablink_train.dir/bi_trainer.cc.o"
  "CMakeFiles/metablink_train.dir/bi_trainer.cc.o.d"
  "CMakeFiles/metablink_train.dir/cross_trainer.cc.o"
  "CMakeFiles/metablink_train.dir/cross_trainer.cc.o.d"
  "CMakeFiles/metablink_train.dir/dl4el_trainer.cc.o"
  "CMakeFiles/metablink_train.dir/dl4el_trainer.cc.o.d"
  "libmetablink_train.a"
  "libmetablink_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metablink_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
