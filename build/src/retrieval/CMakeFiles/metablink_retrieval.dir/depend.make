# Empty dependencies file for metablink_retrieval.
# This may be replaced when dependencies are built.
