file(REMOVE_RECURSE
  "libmetablink_retrieval.a"
)
