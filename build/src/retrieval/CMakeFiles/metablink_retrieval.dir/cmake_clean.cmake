file(REMOVE_RECURSE
  "CMakeFiles/metablink_retrieval.dir/dense_index.cc.o"
  "CMakeFiles/metablink_retrieval.dir/dense_index.cc.o.d"
  "libmetablink_retrieval.a"
  "libmetablink_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metablink_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
