file(REMOVE_RECURSE
  "libmetablink_util.a"
)
