# Empty compiler generated dependencies file for metablink_util.
# This may be replaced when dependencies are built.
