file(REMOVE_RECURSE
  "CMakeFiles/metablink_util.dir/logging.cc.o"
  "CMakeFiles/metablink_util.dir/logging.cc.o.d"
  "CMakeFiles/metablink_util.dir/rng.cc.o"
  "CMakeFiles/metablink_util.dir/rng.cc.o.d"
  "CMakeFiles/metablink_util.dir/serialize.cc.o"
  "CMakeFiles/metablink_util.dir/serialize.cc.o.d"
  "CMakeFiles/metablink_util.dir/status.cc.o"
  "CMakeFiles/metablink_util.dir/status.cc.o.d"
  "CMakeFiles/metablink_util.dir/string_util.cc.o"
  "CMakeFiles/metablink_util.dir/string_util.cc.o.d"
  "CMakeFiles/metablink_util.dir/thread_pool.cc.o"
  "CMakeFiles/metablink_util.dir/thread_pool.cc.o.d"
  "libmetablink_util.a"
  "libmetablink_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metablink_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
