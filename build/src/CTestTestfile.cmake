# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("text")
subdirs("tensor")
subdirs("kb")
subdirs("data")
subdirs("gen")
subdirs("model")
subdirs("retrieval")
subdirs("train")
subdirs("eval")
subdirs("core")
