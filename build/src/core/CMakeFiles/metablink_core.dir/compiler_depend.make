# Empty compiler generated dependencies file for metablink_core.
# This may be replaced when dependencies are built.
