file(REMOVE_RECURSE
  "libmetablink_core.a"
)
