file(REMOVE_RECURSE
  "CMakeFiles/metablink_core.dir/few_shot_linker.cc.o"
  "CMakeFiles/metablink_core.dir/few_shot_linker.cc.o.d"
  "CMakeFiles/metablink_core.dir/pipeline.cc.o"
  "CMakeFiles/metablink_core.dir/pipeline.cc.o.d"
  "libmetablink_core.a"
  "libmetablink_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metablink_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
