file(REMOVE_RECURSE
  "CMakeFiles/metablink_data.dir/example.cc.o"
  "CMakeFiles/metablink_data.dir/example.cc.o.d"
  "CMakeFiles/metablink_data.dir/generator.cc.o"
  "CMakeFiles/metablink_data.dir/generator.cc.o.d"
  "libmetablink_data.a"
  "libmetablink_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metablink_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
