# Empty dependencies file for metablink_data.
# This may be replaced when dependencies are built.
