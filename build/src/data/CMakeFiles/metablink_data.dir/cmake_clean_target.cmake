file(REMOVE_RECURSE
  "libmetablink_data.a"
)
