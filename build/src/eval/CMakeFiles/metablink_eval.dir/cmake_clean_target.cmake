file(REMOVE_RECURSE
  "libmetablink_eval.a"
)
