file(REMOVE_RECURSE
  "CMakeFiles/metablink_eval.dir/evaluator.cc.o"
  "CMakeFiles/metablink_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/metablink_eval.dir/metrics.cc.o"
  "CMakeFiles/metablink_eval.dir/metrics.cc.o.d"
  "libmetablink_eval.a"
  "libmetablink_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metablink_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
