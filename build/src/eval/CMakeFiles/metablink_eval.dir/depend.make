# Empty dependencies file for metablink_eval.
# This may be replaced when dependencies are built.
