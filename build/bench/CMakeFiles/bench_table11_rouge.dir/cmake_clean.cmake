file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_rouge.dir/bench_table11_rouge.cpp.o"
  "CMakeFiles/bench_table11_rouge.dir/bench_table11_rouge.cpp.o.d"
  "bench_table11_rouge"
  "bench_table11_rouge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_rouge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
