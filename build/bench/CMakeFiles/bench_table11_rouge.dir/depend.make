# Empty dependencies file for bench_table11_rouge.
# This may be replaced when dependencies are built.
