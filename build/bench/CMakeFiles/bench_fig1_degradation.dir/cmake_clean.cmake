file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_degradation.dir/bench_fig1_degradation.cpp.o"
  "CMakeFiles/bench_fig1_degradation.dir/bench_fig1_degradation.cpp.o.d"
  "bench_fig1_degradation"
  "bench_fig1_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
