file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_rewriting.dir/bench_table10_rewriting.cpp.o"
  "CMakeFiles/bench_table10_rewriting.dir/bench_table10_rewriting.cpp.o.d"
  "bench_table10_rewriting"
  "bench_table10_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
