# Empty dependencies file for bench_table10_rewriting.
# This may be replaced when dependencies are built.
