# Empty dependencies file for bench_table9_sources.
# This may be replaced when dependencies are built.
