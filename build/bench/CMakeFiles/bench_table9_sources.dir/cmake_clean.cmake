file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_sources.dir/bench_table9_sources.cpp.o"
  "CMakeFiles/bench_table9_sources.dir/bench_table9_sources.cpp.o.d"
  "bench_table9_sources"
  "bench_table9_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
