file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_zeroshot.dir/bench_table7_zeroshot.cpp.o"
  "CMakeFiles/bench_table7_zeroshot.dir/bench_table7_zeroshot.cpp.o.d"
  "bench_table7_zeroshot"
  "bench_table7_zeroshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_zeroshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
