file(REMOVE_RECURSE
  "libmetablink_bench_common.a"
)
