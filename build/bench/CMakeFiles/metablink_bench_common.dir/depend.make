# Empty dependencies file for metablink_bench_common.
# This may be replaced when dependencies are built.
