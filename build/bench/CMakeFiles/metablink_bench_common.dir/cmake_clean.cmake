file(REMOVE_RECURSE
  "CMakeFiles/metablink_bench_common.dir/experiment_common.cc.o"
  "CMakeFiles/metablink_bench_common.dir/experiment_common.cc.o.d"
  "libmetablink_bench_common.a"
  "libmetablink_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metablink_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
