# Empty dependencies file for bench_table8_gap.
# This may be replaced when dependencies are built.
