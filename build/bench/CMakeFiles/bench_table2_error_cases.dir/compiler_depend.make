# Empty compiler generated dependencies file for bench_table2_error_cases.
# This may be replaced when dependencies are built.
